"""Perf-regression sentinel: durable bench history and rolling-baseline compare.

The PR-3 benchmark harness stamps ``benchmarks/results/perf/*.json``
per run but nothing ever *reads* them — a 10x regression in the hot
path would ship silently.  This module closes the loop:

* :data:`BENCHES` — a small suite of deterministic, sub-second
  benchmarks over the paper's own workloads (one bare GEMM, one
  scale-up conv layer, one partition-sweep slice).  Each run measures
  wall time (min over repeats, the stablest point estimate) and the
  delta of every ``repro.obs`` counter that moved (simulated cycles,
  cache traffic, ... — deterministic for a fixed build, so they double
  as a semantic drift detector).
* :func:`record` — appends one JSON line per run to a durable
  ``history.jsonl`` (the rolling baseline lives in the repo, so the
  trajectory survives CI containers).
* :func:`compare` — measures the suite now and judges it against a
  rolling baseline (median of the last ``window`` history entries):
  wall time regresses beyond ``threshold`` (with an absolute noise
  floor, so micro-benches don't flap), or a counter grows beyond a
  much tighter band (counters have no timing noise).

``repro bench record`` / ``repro bench compare`` expose this on the
CLI; a failed compare raises
:class:`~repro.errors.PerfRegressionError`, which exits with its own
documented code so CI can tell "slower" from "broken".  The
``inject_slowdown`` hook scales measured wall times — the smoke drill
uses it to prove the sentinel actually trips.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro._version import __version__
from repro.errors import PerfRegressionError
from repro.utils.atomicio import fsync_directory

PathLike = Union[str, Path]

#: Schema tag on every history line.
BENCH_SCHEMA = "repro.bench/1"

#: Default durable history location, relative to the repo root.
DEFAULT_HISTORY = Path("benchmarks") / "results" / "history.jsonl"

#: Relative wall-time regression tolerated before the sentinel trips.
DEFAULT_THRESHOLD = 0.25

#: Rolling-baseline window (history entries per bench).
DEFAULT_WINDOW = 5

#: Absolute wall-time slack (s): below this, relative noise is meaningless.
NOISE_FLOOR_S = 0.010

#: Relative growth tolerated on deterministic counters.
COUNTER_THRESHOLD = 0.01


# ----------------------------------------------------------------------
# The suite
# ----------------------------------------------------------------------
def _bench_gemm() -> None:
    from repro.config.presets import paper_scaling_config
    from repro.engine.simulator import Simulator

    config = paper_scaling_config(32, 32)
    Simulator(config).run_gemm(256, 256, 256)


def _bench_scaleup_conv() -> None:
    from repro.config.presets import paper_scaling_config
    from repro.engine.simulator import Simulator
    from repro.workloads import get_workload

    layer = get_workload("resnet50")[9]
    config = paper_scaling_config(32, 32)
    Simulator(config).run_layer(layer)


def _bench_sweep_slice() -> None:
    from repro.serve.jobs import sweep_measure
    from repro.workloads.language import language_layer

    layer = language_layer("TF0")
    for partitions in (4, 16):
        sweep_measure(partitions, layer=layer, macs=2**14)


def _bench_sweep_compiler() -> None:
    """Compile, rank and frontier-simulate the Fig. 9 2^16 design space.

    The pruned-sweep pipeline in miniature: vectorized pricing of every
    (grid, array shape) point for all dataflows, then one engine run on
    each analytical optimum.  The ``perf.compiler.points`` counter
    delta doubles as a drift detector on the enumerated space.
    """
    from repro.config.hardware import Dataflow
    from repro.perf.compiler import compile_search_space, simulate_candidates
    from repro.workloads.language import language_layer

    layer = language_layer("TF0")
    for dataflow in Dataflow:
        space = compile_search_space(layer, 2**16, dataflow=dataflow)
        space.frontier()
        simulate_candidates(layer, space, [space.best_index()])


def _bench_sweep_ledger() -> None:
    """Columnar ledger round-trip: record, seal, reopen, query.

    64 synthetic points through the whole durability pipeline — fsynced
    active journal, sealed checksummed segments, the recovery scan on
    reopen, zero-copy column/pareto/group-by reads — in a throwaway
    directory.  The deterministic ``ledger.*`` counter deltas double as
    a drift detector on the sealing and recovery paths.
    """
    import shutil
    import tempfile

    from repro.store.ledger import SweepLedger

    root = Path(tempfile.mkdtemp(prefix="repro-bench-ledger-"))
    try:
        with SweepLedger(root / "ledger", segment_entries=32) as ledger:
            for index in range(64):
                ledger.record(
                    {"partitions": index},
                    "ok",
                    rows=[{
                        "partitions": index,
                        "cycles": 1000 + (index * 37) % 101,
                        "avg_bw": float(index % 7),
                    }],
                )
        with SweepLedger(root / "ledger") as reopened:
            assert reopened.completed_count == 64
            reopened.numeric_column("cycles")
            reopened.pareto(minimize=("cycles", "avg_bw"))
            reopened.group_by("avg_bw", "cycles", agg="min")
    finally:
        shutil.rmtree(root, ignore_errors=True)


#: name -> zero-argument callable; deterministic, each well under a second.
BENCHES: Dict[str, Callable[[], None]] = {
    "gemm_256": _bench_gemm,
    "scaleup_conv": _bench_scaleup_conv,
    "sweep_slice": _bench_sweep_slice,
    "sweep_compiler": _bench_sweep_compiler,
    "sweep_ledger": _bench_sweep_ledger,
}


@dataclass
class BenchResult:
    """One bench's measurement: min wall time and counter deltas."""

    name: str
    wall_time_s: float
    counters: Dict[str, float] = field(default_factory=dict)


def _counter_snapshot() -> Dict[str, float]:
    from repro import obs

    return dict(obs.metrics.snapshot().get("counters", {}))


def _reset_cache() -> None:
    try:
        from repro.perf.cache import cache

        cache.reset()
    except Exception:
        pass


def run_suite(
    names: Optional[Sequence[str]] = None,
    repeats: int = 3,
) -> List[BenchResult]:
    """Measure the suite: min wall over ``repeats``, counters from one rep.

    The layer cache is reset before every repetition so each measures
    the same (cold) work; ``repro.obs`` counters are collected through
    the shared registry, enabled for the duration if needed.
    """
    from repro import obs

    selected = list(names) if names else list(BENCHES)
    unknown = [name for name in selected if name not in BENCHES]
    if unknown:
        raise ValueError(f"unknown bench(es) {unknown}; available: {list(BENCHES)}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")

    was_enabled = obs.metrics.enabled
    obs.metrics.enable()
    results: List[BenchResult] = []
    try:
        for name in selected:
            fn = BENCHES[name]
            best = float("inf")
            deltas: Dict[str, float] = {}
            for rep in range(repeats):
                _reset_cache()
                before = _counter_snapshot()
                start = time.perf_counter()
                fn()
                wall = time.perf_counter() - start
                if wall < best:
                    best = wall
                if rep == 0:
                    after = _counter_snapshot()
                    deltas = {
                        key: after[key] - before.get(key, 0)
                        for key in sorted(after)
                        if after[key] != before.get(key, 0)
                    }
            results.append(BenchResult(name=name, wall_time_s=best, counters=deltas))
    finally:
        if not was_enabled:
            obs.metrics.disable()
        _reset_cache()
    return results


# ----------------------------------------------------------------------
# Durable history
# ----------------------------------------------------------------------
def record(
    history_path: PathLike,
    results: Sequence[BenchResult],
    note: Optional[str] = None,
) -> Dict:
    """Append one history line for ``results``; returns the entry written."""
    entry = {
        "schema": BENCH_SCHEMA,
        "version": __version__,
        "ts_unix": round(time.time(), 3),
        "benches": {
            result.name: {
                "wall_time_s": round(result.wall_time_s, 6),
                "counters": result.counters,
            }
            for result in results
        },
    }
    if note:
        entry["note"] = note
    path = Path(history_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
        handle.flush()
    fsync_directory(path.parent)
    return entry


def load_history(history_path: PathLike) -> List[Dict]:
    """Every well-formed history entry, oldest first."""
    path = Path(history_path)
    if not path.exists():
        return []
    entries: List[Dict] = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            raise ValueError(f"{path}:{lineno}: malformed history line") from None
        if isinstance(entry, dict) and entry.get("schema") == BENCH_SCHEMA:
            entries.append(entry)
    return entries


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BenchVerdict:
    """One bench judged against its rolling baseline."""

    name: str
    wall_time_s: float
    baseline_s: Optional[float]  # None: no history yet
    wall_regressed: bool
    counter_regressions: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.wall_regressed and not self.counter_regressions

    @property
    def ratio(self) -> Optional[float]:
        if self.baseline_s is None or self.baseline_s <= 0:
            return None
        return self.wall_time_s / self.baseline_s


@dataclass(frozen=True)
class CompareReport:
    """The whole suite judged; renders and raises."""

    verdicts: List[BenchVerdict]
    threshold: float
    window: int

    @property
    def regressions(self) -> List[BenchVerdict]:
        return [verdict for verdict in self.verdicts if not verdict.ok]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"{'bench':16s} {'wall':>10s} {'baseline':>10s} {'ratio':>7s}  verdict"
        ]
        for verdict in self.verdicts:
            baseline = (
                f"{verdict.baseline_s:.4f}s" if verdict.baseline_s is not None else "-"
            )
            ratio = f"{verdict.ratio:.2f}x" if verdict.ratio is not None else "-"
            if verdict.ok:
                state = "ok" if verdict.baseline_s is not None else "ok (no baseline)"
            else:
                reasons = []
                if verdict.wall_regressed:
                    reasons.append(f"wall +{(verdict.ratio - 1) * 100:.0f}%")
                for counter, info in verdict.counter_regressions.items():
                    reasons.append(
                        f"{counter} {info['baseline']:.0f}->{info['current']:.0f}"
                    )
                state = "REGRESSED: " + ", ".join(reasons)
            lines.append(
                f"{verdict.name:16s} {verdict.wall_time_s:>9.4f}s {baseline:>10s} "
                f"{ratio:>7s}  {state}"
            )
        return "\n".join(lines)

    def raise_on_regression(self) -> None:
        if self.ok:
            return
        names = ", ".join(verdict.name for verdict in self.regressions)
        raise PerfRegressionError(
            f"performance regression in {names} "
            f"(threshold {self.threshold:.0%}, window {self.window}):\n"
            + self.render()
        )


def compare(
    history: Sequence[Dict],
    results: Sequence[BenchResult],
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
    counter_threshold: float = COUNTER_THRESHOLD,
    noise_floor_s: float = NOISE_FLOOR_S,
    inject_slowdown: float = 0.0,
) -> CompareReport:
    """Judge ``results`` against the rolling baseline in ``history``.

    Wall time regresses when it exceeds ``baseline * (1 + threshold)``
    *and* the excess clears ``noise_floor_s`` — micro-benches on noisy
    CI hosts need the absolute guard.  Counters regress on relative
    growth beyond ``counter_threshold`` (shrinking is an improvement,
    never flagged).  A bench with no history passes (and should be
    recorded to seed its baseline).  ``inject_slowdown`` scales the
    measured wall times — a self-test hook proving the sentinel trips.
    """
    verdicts: List[BenchVerdict] = []
    for result in results:
        wall = result.wall_time_s * (1.0 + inject_slowdown)
        samples: List[float] = []
        counter_baseline: Optional[Dict[str, float]] = None
        for entry in history:
            bench = entry.get("benches", {}).get(result.name)
            if not bench:
                continue
            samples.append(float(bench["wall_time_s"]))
            counter_baseline = bench.get("counters") or counter_baseline
        samples = samples[-window:]
        baseline = _median(samples) if samples else None
        wall_regressed = bool(
            baseline is not None
            and wall > baseline * (1.0 + threshold)
            and wall - baseline > noise_floor_s
        )
        counter_regressions: Dict[str, Dict[str, float]] = {}
        if counter_baseline:
            for counter, before in counter_baseline.items():
                current = result.counters.get(counter)
                if current is None or before <= 0:
                    continue
                if current > before * (1.0 + counter_threshold):
                    counter_regressions[counter] = {
                        "baseline": float(before),
                        "current": float(current),
                    }
        verdicts.append(
            BenchVerdict(
                name=result.name,
                wall_time_s=wall,
                baseline_s=baseline,
                wall_regressed=wall_regressed,
                counter_regressions=counter_regressions,
            )
        )
    return CompareReport(verdicts=verdicts, threshold=threshold, window=window)
