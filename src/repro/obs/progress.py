"""Sweep progress telemetry: points done/total, throughput, ETA.

:class:`ProgressTracker` is fed one :meth:`~ProgressTracker.update` per
completed grid point and answers with a :class:`ProgressSnapshot` —
done/total, rolling throughput over the last ``window`` completions and
the ETA it implies.  The clock is injectable so tests never depend on
wall time.

The robust executor (:func:`repro.robust.executor.execute_grid`) drives
one of these per batch, logging each snapshot at INFO under
``repro.obs.progress`` (visible with the CLI's ``-v``) and mirroring
done/total into the ``sweep.points_done`` / ``sweep.points_total``
gauges.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional


@dataclass(frozen=True)
class ProgressSnapshot:
    """One reading of a batch's progress."""

    done: int
    total: int
    elapsed: float
    #: Points per second over the rolling window (None before 2 points).
    throughput: Optional[float]
    #: Seconds to completion at the current throughput (None if unknown).
    eta: Optional[float]

    @property
    def fraction(self) -> float:
        return self.done / self.total if self.total else 1.0

    def describe(self) -> str:
        """One line for logs: ``12/100 (12.0%) · 3.4 pt/s · eta 26s``."""
        parts = [f"{self.done}/{self.total} ({self.fraction:.1%})"]
        if self.throughput is not None:
            parts.append(f"{self.throughput:.2f} pt/s")
        if self.eta is not None:
            parts.append(f"eta {self.eta:.0f}s")
        return " · ".join(parts)


class ProgressTracker:
    """Rolling-window progress accounting for a fixed-size batch."""

    def __init__(
        self,
        total: int,
        clock: Callable[[], float] = time.monotonic,
        window: int = 32,
    ):
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.total = total
        self.done = 0
        self._clock = clock
        self._start = clock()
        #: Completion timestamps of the last ``window`` points.
        self._times: Deque[float] = deque(maxlen=window)

    def update(self, n: int = 1) -> ProgressSnapshot:
        """Mark ``n`` more points complete and return the new snapshot."""
        self.done += n
        now = self._clock()
        self._times.append(now)
        return self.snapshot(now)

    def snapshot(self, now: Optional[float] = None) -> ProgressSnapshot:
        if now is None:
            now = self._clock()
        throughput: Optional[float] = None
        if len(self._times) >= 2:
            span = self._times[-1] - self._times[0]
            if span > 0:
                throughput = (len(self._times) - 1) / span
        if throughput is None and self.done and now > self._start:
            throughput = self.done / (now - self._start)
        remaining = max(0, self.total - self.done)
        eta = remaining / throughput if throughput else None
        return ProgressSnapshot(
            done=self.done,
            total=self.total,
            elapsed=now - self._start,
            throughput=throughput,
            eta=eta,
        )
