"""Crash flight recorder: a bounded ring of recent telemetry, dumped on failure.

Postmortems of supervisor kills, store corruption, or daemon crashes
used to require reproducing the failure with ``--trace`` armed.  The
flight recorder removes that step: while armed, it taps the process's
existing telemetry —

* every span/event the tracer records (via a tracer listener), and
* every log record at or above a threshold (via a ``logging.Handler``)

— into fixed-size rings, and on failure dumps them atomically (via
:mod:`repro.utils.atomicio`, so a crash mid-dump never leaves a
truncated file) to ``flight-<pid>-<ns>.json`` in the armed directory.

Dump triggers, wired in :mod:`repro.cli` and the daemon:

* any CLI exit code >= 10 (infrastructure failures, per ``EXIT_CODES``),
* an unhandled exception (a chained ``sys.excepthook``),
* SIGTERM delivered to the daemon.

The dump embeds its spans as Chrome ``traceEvents``, so ``repro stats
--from-flight`` (and plain ``repro stats``) renders a flight dump with
the same top-spans view as a live trace, alongside the crash reason,
the tail of the log, and the metrics snapshot at the moment of death.

Arming is opt-in: ``repro --flight DIR ...`` or ``REPRO_FLIGHT_DIR``.
The armed recorder enables the shared tracer; if no ``--trace`` sink
was requested, the caller should bound the tracer's own buffer
(:meth:`~repro.obs.tracer.Tracer.limit_records`) so a long-lived
process stays flat on memory — the recorder's rings are always bounded.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Union

from repro.obs.export import _span_to_event, run_metadata
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanRecord, Tracer
from repro.utils.atomicio import atomic_write_text

PathLike = Union[str, Path]

#: Environment variable arming the recorder (same effect as ``--flight``).
FLIGHT_DIR_ENV = "REPRO_FLIGHT_DIR"

#: Schema tag written into every dump.
FLIGHT_SCHEMA = "repro.flight/1"

#: Default ring capacities (spans/events, log records).
SPAN_RING_CAPACITY = 2048
LOG_RING_CAPACITY = 512


class _RingHandler(logging.Handler):
    """Feeds formatted log records into the recorder's bounded ring."""

    def __init__(
        self,
        ring: Deque[Dict],
        level: int = logging.DEBUG,
        exclude_prefix: Optional[str] = None,
    ):
        super().__init__(level=level)
        self._ring = ring
        if exclude_prefix:
            dotted = exclude_prefix + "."
            self.addFilter(
                lambda record: not (
                    record.name == exclude_prefix or record.name.startswith(dotted)
                )
            )

    def emit(self, record: logging.LogRecord) -> None:
        try:
            self._ring.append(
                {
                    "ts_unix": record.created,
                    "level": record.levelname,
                    "logger": record.name,
                    "message": record.getMessage(),
                }
            )
        except Exception:  # never let telemetry break the program
            pass


class FlightRecorder:
    """Bounded rings of recent spans and logs, dumped atomically on demand."""

    def __init__(
        self,
        directory: PathLike,
        span_capacity: int = SPAN_RING_CAPACITY,
        log_capacity: int = LOG_RING_CAPACITY,
    ):
        self.directory = Path(directory)
        self._spans: Deque[SpanRecord] = deque(maxlen=span_capacity)
        self._logs: Deque[Dict] = deque(maxlen=log_capacity)
        self._handler = _RingHandler(self._logs)
        # the root-side tap excludes repro.* records: those come in via
        # the handler on the "repro" logger, whether or not that logger
        # propagates to root (configure_logging turns propagation off)
        self._root_handler = _RingHandler(self._logs, exclude_prefix="repro")
        self._tracer: Optional[Tracer] = None
        self._registry: Optional[MetricsRegistry] = None
        self._armed = False
        self.last_dump: Optional[Path] = None

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    @property
    def armed(self) -> bool:
        return self._armed

    def arm(self, tracer: Tracer, registry: Optional[MetricsRegistry] = None) -> None:
        """Start recording: tap ``tracer`` and the root logger.

        Enables the tracer (spans only exist while it is enabled);
        bounding the tracer's own buffer is the caller's choice — the
        recorder's rings are bounded regardless.
        """
        if self._armed:
            return
        self._tracer = tracer
        self._registry = registry
        tracer.add_listener(self._spans.append)
        tracer.enable()
        # the "repro" hierarchy may not propagate to the root logger,
        # so tap both: library records and anything else in the process
        logging.getLogger("repro").addHandler(self._handler)
        logging.getLogger().addHandler(self._root_handler)
        self._armed = True

    def disarm(self) -> None:
        if not self._armed:
            return
        if self._tracer is not None:
            # bound builtin methods compare equal by (__self__, __func__),
            # so remove_listener finds the one arm() registered
            self._tracer.remove_listener(self._spans.append)
        logging.getLogger("repro").removeHandler(self._handler)
        logging.getLogger().removeHandler(self._root_handler)
        self._armed = False

    # ------------------------------------------------------------------
    # Dumping
    # ------------------------------------------------------------------
    def dump(
        self,
        reason: str,
        exit_code: Optional[int] = None,
        force: bool = False,
    ) -> Optional[Path]:
        """Write the rings to ``flight-<pid>-<ns>.json``; returns the path.

        Idempotent per process unless ``force``: the excepthook and the
        CLI's exit-code path can both fire for one crash, and the first
        dump — taken closest to the failure — is the one that matters.
        Never raises: a recorder that cannot write (full disk, vanished
        directory) reports ``None`` rather than masking the original
        failure.
        """
        if self.last_dump is not None and not force:
            return self.last_dump
        pid = os.getpid()
        doc = {
            "schema": FLIGHT_SCHEMA,
            "reason": reason,
            "exit_code": exit_code,
            "pid": pid,
            "metadata": run_metadata(),
            "traceEvents": sorted(
                (_span_to_event(record, pid) for record in list(self._spans)),
                key=lambda event: event["ts"],
            ),
            "logs": list(self._logs),
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        if self._registry is not None:
            doc.update(self._registry.snapshot())
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.directory / f"flight-{pid}-{time.time_ns()}.json"
            atomic_write_text(path, json.dumps(doc, indent=1, default=repr))
        except OSError:
            return None
        self.last_dump = path
        return path


# ----------------------------------------------------------------------
# Process-wide recorder management
# ----------------------------------------------------------------------
_recorder: Optional[FlightRecorder] = None
_prior_excepthook = None


def flight_dir_from_env() -> Optional[Path]:
    value = os.environ.get(FLIGHT_DIR_ENV, "").strip()
    return Path(value) if value else None


def get_recorder() -> Optional[FlightRecorder]:
    """The armed process-wide recorder, if any."""
    return _recorder


def arm(
    directory: PathLike,
    tracer: Tracer,
    registry: Optional[MetricsRegistry] = None,
    install_hook: bool = True,
) -> FlightRecorder:
    """Arm the process-wide recorder (idempotent) and chain the excepthook."""
    global _recorder, _prior_excepthook
    if _recorder is not None:
        return _recorder
    _recorder = FlightRecorder(directory)
    _recorder.arm(tracer, registry)
    if install_hook:
        _prior_excepthook = sys.excepthook
        sys.excepthook = _flight_excepthook
    return _recorder


def disarm() -> None:
    """Disarm and forget the process-wide recorder (tests)."""
    global _recorder, _prior_excepthook
    if _recorder is not None:
        _recorder.disarm()
        _recorder = None
    if _prior_excepthook is not None:
        sys.excepthook = _prior_excepthook
        _prior_excepthook = None


def dump(reason: str, exit_code: Optional[int] = None) -> Optional[Path]:
    """Dump the process-wide recorder, if armed."""
    if _recorder is None:
        return None
    return _recorder.dump(reason, exit_code=exit_code)


def _flight_excepthook(exc_type, exc, tb) -> None:
    if _recorder is not None:
        _recorder.dump(f"unhandled {exc_type.__name__}: {exc}")
    hook = _prior_excepthook or sys.__excepthook__
    hook(exc_type, exc, tb)


# ----------------------------------------------------------------------
# Loading (``repro stats --from-flight``)
# ----------------------------------------------------------------------
def load_flight(path: PathLike) -> Dict:
    """Load a flight dump, validating its schema tag."""
    with Path(path).open() as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or doc.get("schema") != FLIGHT_SCHEMA:
        raise ValueError(f"{path}: not a flight-recorder dump ({FLIGHT_SCHEMA})")
    return doc


def render_flight_summary(doc: Dict, top: int = 10, log_tail: int = 10) -> str:
    """Render a flight dump: crash header, top spans, metrics, log tail."""
    from repro.obs.stats import render_metrics_summary, render_trace_summary

    lines: List[str] = [
        "# flight recorder dump (pid {pid}): {reason}".format(
            pid=doc.get("pid", "?"), reason=doc.get("reason", "unknown")
        )
    ]
    if doc.get("exit_code") is not None:
        lines.append(f"# exit code {doc['exit_code']}")
    lines.append("")
    lines.append(render_trace_summary(doc, top=top))
    if doc.get("counters") or doc.get("gauges") or doc.get("histograms"):
        lines.append("")
        lines.append(render_metrics_summary({k: doc[k] for k in
                                             ("counters", "gauges", "histograms")},
                                            top=top))
    logs = doc.get("logs") or []
    if logs:
        lines.append("")
        lines.append(f"last {min(log_tail, len(logs))} of {len(logs)} log records:")
        for record in logs[-log_tail:]:
            lines.append(
                "  {level:7s} {logger}: {message}".format(
                    level=record.get("level", "?"),
                    logger=record.get("logger", "?"),
                    message=record.get("message", ""),
                )
            )
    return "\n".join(lines)
