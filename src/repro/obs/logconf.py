"""Logging configuration for the ``repro.*`` logger hierarchy.

Library modules log under ``repro.<package>`` (e.g.
``repro.robust.executor``); nothing is printed unless the embedding
application — or the CLI via ``-v`` / ``--log-level`` — configures the
hierarchy.  :func:`configure_logging` attaches one stderr handler to
the ``repro`` root logger, idempotently, leaving stdout exclusively for
report tables.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional, Union

#: Environment variable carrying the configured level across process
#: boundaries, so supervisor worker processes log at the parent's level
#: instead of silently dropping everything below WARNING.
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

#: CLI verbosity (-v count) to logging level.
_VERBOSITY_LEVELS = {0: logging.WARNING, 1: logging.INFO}

_LOG_FORMAT = "%(levelname)s %(name)s: %(message)s"


class _DynamicStderrHandler(logging.StreamHandler):
    """A StreamHandler that always writes to the *current* sys.stderr.

    Resolving the stream per emit keeps log output visible to capture
    tools (pytest's capsys, subprocess pipes) that swap sys.stderr
    after logging was configured.
    """

    def __init__(self) -> None:
        super().__init__(stream=sys.stderr)

    @property
    def stream(self):  # type: ignore[override]
        return sys.stderr

    @stream.setter
    def stream(self, value) -> None:  # the dynamic lookup wins
        pass


def resolve_level(level: Union[str, int, None], verbosity: int = 0) -> int:
    """Map an explicit level name/number plus ``-v`` count to a level.

    An explicit ``level`` wins; otherwise verbosity 0 is WARNING, 1 is
    INFO and 2+ is DEBUG.
    """
    if isinstance(level, int):
        return level
    if level:
        resolved = logging.getLevelName(str(level).upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        return resolved
    return _VERBOSITY_LEVELS.get(verbosity, logging.DEBUG)


def configure_logging(
    level: Union[str, int, None] = None,
    verbosity: int = 0,
) -> logging.Logger:
    """Configure the ``repro`` root logger and return it (idempotent).

    The resolved level is exported in :data:`LOG_LEVEL_ENV` so child
    processes (the supervised worker pool) can mirror it via
    :func:`configure_from_env`.
    """
    logger = logging.getLogger("repro")
    resolved = resolve_level(level, verbosity)
    logger.setLevel(resolved)
    os.environ[LOG_LEVEL_ENV] = logging.getLevelName(resolved)
    if not any(isinstance(h, _DynamicStderrHandler) for h in logger.handlers):
        handler = _DynamicStderrHandler()
        handler.setFormatter(logging.Formatter(_LOG_FORMAT))
        logger.addHandler(handler)
    logger.propagate = False
    return logger


def configure_from_env() -> Optional[logging.Logger]:
    """Worker-side mirror of the parent's logging configuration.

    Reads :data:`LOG_LEVEL_ENV` (set by :func:`configure_logging` in
    the parent) and configures this process identically; a no-op when
    the variable is absent or unparsable, so library embedders who
    never configured logging see no behavior change.
    """
    value = os.environ.get(LOG_LEVEL_ENV, "").strip()
    if not value:
        return None
    try:
        return configure_logging(level=value)
    except ValueError:
        return None


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger in the ``repro`` hierarchy (``repro`` itself if unnamed)."""
    return logging.getLogger(f"repro.{name}" if name else "repro")
