"""Summarize recorded trace/metrics files (the ``repro stats`` command).

Consumes the files written by :mod:`repro.obs.export` and produces the
two summaries an engineer reaches for first:

* **Top spans by self-time** — where did the wall clock actually go,
  with double-counting from nesting removed (a parent's self-time
  excludes its children).
* **Histogram percentiles and counters** — the recorded metrics, with
  p50/p90/p99 readouts per histogram.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.export import load_metrics, load_trace

PathLike = Union[str, Path]


@dataclass(frozen=True)
class SpanStat:
    """Aggregate timing of every span sharing one name."""

    name: str
    count: int
    total_us: float
    self_us: float
    max_us: float

    @property
    def avg_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0


def trace_span_stats(doc: Dict) -> List[SpanStat]:
    """Per-name aggregates of a Chrome trace doc, by self-time, descending."""
    totals: Dict[str, Dict[str, float]] = {}
    for event in doc.get("traceEvents", ()):
        if event.get("ph") != "X":
            continue
        name = event.get("name", "?")
        duration = float(event.get("dur", 0.0))
        self_us = float(event.get("args", {}).get("self_us", duration))
        agg = totals.setdefault(
            name, {"count": 0, "total": 0.0, "self": 0.0, "max": 0.0}
        )
        agg["count"] += 1
        agg["total"] += duration
        agg["self"] += self_us
        agg["max"] = max(agg["max"], duration)
    stats = [
        SpanStat(
            name=name,
            count=int(agg["count"]),
            total_us=agg["total"],
            self_us=agg["self"],
            max_us=agg["max"],
        )
        for name, agg in totals.items()
    ]
    stats.sort(key=lambda stat: stat.self_us, reverse=True)
    return stats


def trace_event_counts(doc: Dict) -> Dict[str, int]:
    """How many instant events of each name the trace carries."""
    counts: Dict[str, int] = {}
    for event in doc.get("traceEvents", ()):
        if event.get("ph") == "i":
            name = event.get("name", "?")
            counts[name] = counts.get(name, 0) + 1
    return dict(sorted(counts.items()))


def _fmt_us(value: float) -> str:
    if value >= 1_000_000:
        return f"{value / 1_000_000:.3f}s"
    if value >= 1_000:
        return f"{value / 1_000:.3f}ms"
    return f"{value:.1f}us"


def render_trace_summary(doc: Dict, top: int = 10) -> str:
    """Human-readable trace summary: header, top spans, event counts."""
    lines: List[str] = []
    metadata = doc.get("metadata", {})
    if metadata:
        lines.append(
            "# trace from {tool} {version} (config {config})".format(
                tool=metadata.get("tool", "?"),
                version=metadata.get("version", "?"),
                config=metadata.get("config_hash") or "unhashed",
            )
        )
    stats = trace_span_stats(doc)
    events = [e for e in doc.get("traceEvents", ()) if e.get("ph") == "X"]
    if events:
        first = min(e["ts"] for e in events)
        last = max(e["ts"] + e.get("dur", 0.0) for e in events)
        lines.append(
            f"{len(events)} spans over {_fmt_us(last - first)} "
            f"({len(stats)} distinct names)"
        )
    else:
        lines.append("0 spans")
    if stats:
        lines.append("")
        lines.append(
            f"{'span':32s} {'count':>7s} {'self':>10s} {'total':>10s} "
            f"{'avg':>10s} {'max':>10s}"
        )
        for stat in stats[:top]:
            lines.append(
                f"{stat.name:32s} {stat.count:7d} {_fmt_us(stat.self_us):>10s} "
                f"{_fmt_us(stat.total_us):>10s} {_fmt_us(stat.avg_us):>10s} "
                f"{_fmt_us(stat.max_us):>10s}"
            )
    counts = trace_event_counts(doc)
    if counts:
        lines.append("")
        lines.append("events: " + ", ".join(f"{name}={n}" for name, n in counts.items()))
    return "\n".join(lines)


def render_metrics_summary(doc: Dict, top: int = 10) -> str:
    """Human-readable metrics summary: counters, gauges, percentiles."""
    lines: List[str] = []
    metadata = doc.get("metadata", {})
    if metadata:
        lines.append(
            "# metrics from {tool} {version} (config {config})".format(
                tool=metadata.get("tool", "?"),
                version=metadata.get("version", "?"),
                config=metadata.get("config_hash") or "unhashed",
            )
        )
    counters = doc.get("counters", {})
    if counters:
        lines.append("")
        lines.append(f"{'counter':40s} {'value':>14s}")
        for name, value in sorted(counters.items()):
            lines.append(f"{name:40s} {value:>14}")
    gauges = {k: v for k, v in doc.get("gauges", {}).items() if v is not None}
    if gauges:
        lines.append("")
        lines.append(f"{'gauge':40s} {'value':>14s}")
        for name, value in sorted(gauges.items()):
            lines.append(f"{name:40s} {value:>14}")
    histograms = doc.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append(
            f"{'histogram':32s} {'count':>7s} {'mean':>10s} {'p50':>10s} "
            f"{'p90':>10s} {'p99':>10s} {'max':>10s}"
        )
        for name, snap in sorted(histograms.items()):
            def cell(key: str) -> str:
                value = snap.get(key)
                return "-" if value is None else f"{value:.4g}"

            lines.append(
                f"{name:32s} {snap.get('count', 0):7d} {cell('mean'):>10s} "
                f"{cell('p50'):>10s} {cell('p90'):>10s} {cell('p99'):>10s} "
                f"{cell('max'):>10s}"
            )
    if len(lines) <= 1:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)


def summarize_file(path: PathLike, top: int = 10) -> str:
    """Sniff ``path`` (trace or metrics JSON) and render its summary.

    Raises :class:`ValueError` for files in neither format.
    """
    path = Path(path)
    with path.open() as handle:
        head = handle.read(1)
    if head != "{":
        raise ValueError(f"{path}: not a JSON object (is this a JSONL log?)")
    doc = json.loads(path.read_text())
    if "traceEvents" in doc:
        return render_trace_summary(load_trace(path), top=top)
    if "counters" in doc:
        return render_metrics_summary(load_metrics(path), top=top)
    raise ValueError(
        f"{path}: neither a Chrome trace (traceEvents) nor a metrics "
        "file (counters)"
    )
