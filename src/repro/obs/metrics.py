"""Counters, gauges and histograms behind a get-or-create registry.

Instrumented code asks the registry for an instrument *at the use
site*::

    from repro.obs import metrics

    metrics.counter("sim.cycles").add(result.total_cycles)

While the registry is disabled (the default), every accessor returns a
shared no-op singleton, so the cost of an uninstrumented run is one
attribute check plus one early return — no dict mutation, no
allocation.  Because instruments are looked up per call, enabling or
disabling the registry takes effect immediately everywhere; handles
must not be cached across :meth:`MetricsRegistry.enable` boundaries.

Histograms keep exact ``count``/``sum``/``min``/``max`` and a bounded
sample for percentile estimation: once the sample buffer fills, it is
thinned to every other element and the sampling stride doubles, so
memory stays bounded while the sample remains spread across the whole
observation stream (not just its head).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Union

from repro.errors import InstrumentKindError

Number = Union[int, float]

#: Sample-buffer capacity per histogram; thinning keeps it below this.
HISTOGRAM_SAMPLE_CAP = 8192


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def add(self, amount: Number = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """A distribution with exact moments and sampled percentiles."""

    __slots__ = ("name", "count", "total", "min", "max", "_sample", "_stride")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self._sample: List[Number] = []
        self._stride = 1

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if (self.count - 1) % self._stride == 0:
            self._sample.append(value)
            if len(self._sample) >= HISTOGRAM_SAMPLE_CAP:
                self._sample = self._sample[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> Optional[float]:
        """Linear-interpolated percentile ``p`` in [0, 100] of the sample."""
        if not self._sample:
            return None
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        ordered = sorted(self._sample)
        if len(ordered) == 1:
            return float(ordered[0])
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)

    def snapshot(self) -> Dict[str, Optional[float]]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class _NullCounter:
    __slots__ = ()

    def add(self, amount: Number = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: Number) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: Number) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted on demand."""

    def __init__(self, enabled: bool = False):
        self._enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def counter(self, name: str):
        if not self._enabled:
            return NULL_COUNTER
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                self._check_kind(name, "counter")
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str):
        if not self._enabled:
            return NULL_GAUGE
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                self._check_kind(name, "gauge")
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(self, name: str):
        if not self._enabled:
            return NULL_HISTOGRAM
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                self._check_kind(name, "histogram")
                instrument = self._histograms.setdefault(name, Histogram(name))
        return instrument

    def _check_kind(self, name: str, wanted: str) -> None:
        """Refuse to register one name under two instrument kinds.

        Without this, ``counter("x")`` after ``gauge("x")`` would
        silently mint a second, unrelated instrument sharing the name —
        both would export, and downstream Prometheus text would carry
        the same series under two conflicting ``# TYPE`` declarations.
        Must be called with ``self._lock`` held.
        """
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if kind != wanted and name in table:
                raise InstrumentKindError(
                    f"metric {name!r} is already registered as a {kind}; "
                    f"cannot re-register it as a {wanted}"
                )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """A plain-dict view of every instrument, JSON-serializable."""
        with self._lock:
            return {
                "counters": {name: c.value for name, c in sorted(self._counters.items())},
                "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
                "histograms": {
                    name: h.snapshot() for name, h in sorted(self._histograms.items())
                },
            }
