"""Event-driven execution timeline under a finite DRAM interface.

:func:`repro.engine.stalls.bandwidth_limited_runtime` computes stalled
runtime in closed form by charging each fold ``max(compute, transfer)``.
This module provides an *independent mechanism* for the same question:
a small event-driven simulation of the double-buffered pipeline, with
an explicit FIFO transfer queue on the shared interface:

* the prefetch for fold ``k+1`` is enqueued the moment fold ``k``
  starts computing (that is when the other buffer half frees up);
* the writeback for fold ``k`` is enqueued when its compute ends;
* fold ``k`` may start computing only when its operands have fully
  arrived and fold ``k-1`` has finished (folds share the array);
* the interface serves queued transfers one at a time at ``bandwidth``
  bytes per cycle.

The timeline is exact under those rules, so it brackets the closed-form
model and converges to the stall-free cycle count as bandwidth grows —
properties the test suite checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.memory.bandwidth import DramTraffic


@dataclass(frozen=True)
class FoldTimeline:
    """Timing of one fold in the event-driven execution."""

    index: int
    data_ready: float
    compute_start: float
    compute_end: float
    writeback_end: float
    waited_for_data: bool


@dataclass(frozen=True)
class ExecutionTimeline:
    """Complete event-driven execution of one layer."""

    folds: List[FoldTimeline]
    total_cycles: float
    compute_cycles: int
    bandwidth: float

    @property
    def stall_cycles(self) -> float:
        return self.total_cycles - self.compute_cycles

    @property
    def slowdown(self) -> float:
        return self.total_cycles / self.compute_cycles

    @property
    def num_stalled_folds(self) -> int:
        """Folds whose compute start was gated by data arrival."""
        return sum(1 for fold in self.folds if fold.waited_for_data)


def simulate_execution(traffic: DramTraffic, bandwidth: float) -> ExecutionTimeline:
    """Run the event-driven double-buffer pipeline for one layer."""
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")

    reads = [
        i_bytes + f_bytes
        for i_bytes, f_bytes in zip(
            traffic.ifmap.per_fold_bytes, traffic.filter.per_fold_bytes
        )
    ]
    writes = list(traffic.ofmap_per_fold_bytes)
    cycles = traffic.fold_cycles
    folds = len(cycles)

    interface_free = 0.0  # when the shared interface finishes its queue
    timelines: List[FoldTimeline] = []
    data_ready = [0.0] * folds
    write_done = [0.0] * folds

    def transfer(enqueue_time: float, nbytes: int) -> float:
        """FIFO service on the shared interface; returns completion time."""
        nonlocal interface_free
        start = max(interface_free, enqueue_time)
        interface_free = start + nbytes / bandwidth
        return interface_free

    # Fold 0's operands load cold, before anything computes.
    data_ready[0] = transfer(0.0, reads[0])

    previous_compute_end = 0.0
    for k in range(folds):
        compute_start = max(previous_compute_end, data_ready[k])
        compute_end = compute_start + cycles[k]
        # The freed buffer half lets fold k+1's prefetch begin now.
        if k + 1 < folds:
            data_ready[k + 1] = transfer(compute_start, reads[k + 1])
        write_done[k] = transfer(compute_end, writes[k])
        timelines.append(
            FoldTimeline(
                index=k,
                data_ready=data_ready[k],
                compute_start=compute_start,
                compute_end=compute_end,
                writeback_end=write_done[k],
                waited_for_data=data_ready[k] > previous_compute_end + 1e-12,
            )
        )
        previous_compute_end = compute_end

    total = max(previous_compute_end, write_done[-1])
    return ExecutionTimeline(
        folds=timelines,
        total_cycles=total,
        compute_cycles=sum(cycles),
        bandwidth=bandwidth,
    )
