"""Accelerator memory system: double-buffered SRAMs and DRAM demand."""

from repro.memory.buffers import BufferSet, DoubleBuffer
from repro.memory.reuse import OperandTraffic, operand_dram_traffic
from repro.memory.bandwidth import BandwidthProfile, DramTraffic, compute_dram_traffic

__all__ = [
    "BufferSet",
    "DoubleBuffer",
    "OperandTraffic",
    "operand_dram_traffic",
    "BandwidthProfile",
    "DramTraffic",
    "compute_dram_traffic",
]
