"""Stall-free DRAM bandwidth accounting (Fig. 11 of the paper).

Double buffering turns prefetching into a pipelining constraint: the
bytes fold ``k`` will consume must arrive while fold ``k-1`` executes,
and the outputs fold ``k`` produced drain while fold ``k+1`` executes.
The *stall-free bandwidth requirement* is therefore the largest
per-fold transfer rate this schedule ever demands; the *average
bandwidth* is total bytes over total cycles.  Fold 0's operands have no
predecessor to hide behind — they are reported separately as the
cold-start bytes (SCALE-Sim's initial prefetch delay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.dataflow.base import DataflowEngine
from repro.memory.buffers import BufferSet
from repro.memory.reuse import OperandTraffic, operand_dram_traffic


@dataclass(frozen=True)
class BandwidthProfile:
    """Bandwidth requirements of one layer, in bytes per cycle."""

    avg_read_bw: float
    avg_write_bw: float
    peak_read_bw: float
    peak_write_bw: float

    @property
    def avg_total_bw(self) -> float:
        return self.avg_read_bw + self.avg_write_bw

    @property
    def peak_total_bw(self) -> float:
        return self.peak_read_bw + self.peak_write_bw


@dataclass(frozen=True)
class DramTraffic:
    """Complete DRAM-side picture of one layer on one array."""

    ifmap: OperandTraffic
    filter: OperandTraffic
    ofmap_per_fold_bytes: List[int]
    cold_start_bytes: int
    fold_cycles: List[int]
    bandwidth: BandwidthProfile

    @property
    def ofmap_write_bytes(self) -> int:
        return sum(self.ofmap_per_fold_bytes)

    @property
    def read_bytes(self) -> int:
        return self.ifmap.total_bytes + self.filter.total_bytes

    @property
    def write_bytes(self) -> int:
        return self.ofmap_write_bytes

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    @property
    def total_cycles(self) -> int:
        return sum(self.fold_cycles)


def _stall_free_bandwidths(
    read_per_fold: Sequence[int],
    write_per_fold: Sequence[int],
    fold_cycles: Sequence[int],
) -> BandwidthProfile:
    """Max/avg transfer rates implied by the double-buffer schedule."""
    total_cycles = sum(fold_cycles)
    total_reads = sum(read_per_fold)
    total_writes = sum(write_per_fold)
    peak_read = 0.0
    peak_write = 0.0
    for k in range(1, len(fold_cycles)):
        # Fold k's operands prefetch during fold k-1.
        peak_read = max(peak_read, read_per_fold[k] / fold_cycles[k - 1])
        # Fold k-1's outputs drain during fold k.
        peak_write = max(peak_write, write_per_fold[k - 1] / fold_cycles[k])
    if len(fold_cycles) == 1:
        # Single fold: everything must move within the fold itself.
        peak_read = read_per_fold[0] / fold_cycles[0]
        peak_write = write_per_fold[0] / fold_cycles[0]
    else:
        # The final fold's outputs also need one fold-time to drain.
        peak_write = max(peak_write, write_per_fold[-1] / fold_cycles[-1])
    return BandwidthProfile(
        avg_read_bw=total_reads / total_cycles,
        avg_write_bw=total_writes / total_cycles,
        peak_read_bw=peak_read,
        peak_write_bw=peak_write,
    )


def compute_dram_traffic(
    engine: DataflowEngine,
    buffers: BufferSet,
    word_bytes: int,
    loop_order: str = "row",
) -> DramTraffic:
    """Derive the full DRAM traffic picture for one layer on one array.

    Walks the engine's fold plan once, collecting operand slices, output
    volumes and fold latencies, then applies the reuse model per operand
    and the double-buffer pipelining rule for bandwidth.

    ``loop_order`` selects the fold iteration order ("row" is
    SCALE-Sim's default; "col" transposes the loop nest).  Runtime is
    order-independent, but which operand enjoys consecutive-fold reuse
    is not — see the fold-order ablation benchmark.
    """
    folds = list(engine.plan.folds(order=loop_order))
    ifmap_slices = [engine.ifmap_slice(fold) for fold in folds]
    filter_slices = [engine.filter_slice(fold) for fold in folds]
    write_per_fold = [engine.fold_ofmap_elements(fold) * word_bytes for fold in folds]
    fold_cycles = [engine.fold_cycles(fold) for fold in folds]

    ifmap_traffic = operand_dram_traffic(
        ifmap_slices, engine.m * engine.k, buffers.ifmap, word_bytes
    )
    filter_traffic = operand_dram_traffic(
        filter_slices, engine.k * engine.n, buffers.filter, word_bytes
    )
    read_per_fold = [
        i_bytes + f_bytes
        for i_bytes, f_bytes in zip(ifmap_traffic.per_fold_bytes, filter_traffic.per_fold_bytes)
    ]
    bandwidth = _stall_free_bandwidths(read_per_fold, write_per_fold, fold_cycles)
    return DramTraffic(
        ifmap=ifmap_traffic,
        filter=filter_traffic,
        ofmap_per_fold_bytes=write_per_fold,
        cold_start_bytes=read_per_fold[0],
        fold_cycles=fold_cycles,
        bandwidth=bandwidth,
    )
