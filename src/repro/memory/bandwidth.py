"""Stall-free DRAM bandwidth accounting (Fig. 11 of the paper).

Double buffering turns prefetching into a pipelining constraint: the
bytes fold ``k`` will consume must arrive while fold ``k-1`` executes,
and the outputs fold ``k`` produced drain while fold ``k+1`` executes.
The *stall-free bandwidth requirement* is therefore the largest
per-fold transfer rate this schedule ever demands; the *average
bandwidth* is total bytes over total cycles.  Fold 0's operands have no
predecessor to hide behind — they are reported separately as the
cold-start bytes (SCALE-Sim's initial prefetch delay).

Two implementations produce the same (asserted-identical) numbers:

* the *iterative* path walks every fold, calling back into the engine
  for slices, output volumes and latencies — the reference semantics;
* the *closed-form* path exploits that folds come in at most four shape
  classes (interior, edge-row, edge-col, corner) and that each engine
  declares which fold-grid axis keys its operand slices, so the
  per-fold lists can be assembled from <= 4 engine probes by list
  repetition instead of O(F_R x F_C) Python calls.

The closed-form path self-checks its assumptions against probe slices
from the representative folds and silently falls back to the iterative
path on any mismatch, so custom engines stay correct by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataflow.base import DataflowEngine
from repro.mapping.folds import Fold
from repro.memory.buffers import BufferSet, DoubleBuffer
from repro.memory.reuse import OperandTraffic, operand_dram_traffic

#: Above this magnitude, int -> float64 conversion may round and the
#: vectorized bandwidth computation could diverge from the scalar one.
_EXACT_FLOAT_LIMIT = 2**52


@dataclass(frozen=True)
class BandwidthProfile:
    """Bandwidth requirements of one layer, in bytes per cycle."""

    avg_read_bw: float
    avg_write_bw: float
    peak_read_bw: float
    peak_write_bw: float

    @property
    def avg_total_bw(self) -> float:
        return self.avg_read_bw + self.avg_write_bw

    @property
    def peak_total_bw(self) -> float:
        return self.peak_read_bw + self.peak_write_bw


@dataclass(frozen=True)
class DramTraffic:
    """Complete DRAM-side picture of one layer on one array."""

    ifmap: OperandTraffic
    filter: OperandTraffic
    ofmap_per_fold_bytes: List[int]
    cold_start_bytes: int
    fold_cycles: List[int]
    bandwidth: BandwidthProfile

    @property
    def ofmap_write_bytes(self) -> int:
        return sum(self.ofmap_per_fold_bytes)

    @property
    def read_bytes(self) -> int:
        return self.ifmap.total_bytes + self.filter.total_bytes

    @property
    def write_bytes(self) -> int:
        return self.ofmap_write_bytes

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    @property
    def total_cycles(self) -> int:
        return sum(self.fold_cycles)


def _stall_free_bandwidths(
    read_per_fold: Sequence[int],
    write_per_fold: Sequence[int],
    fold_cycles: Sequence[int],
) -> BandwidthProfile:
    """Max/avg transfer rates implied by the double-buffer schedule."""
    total_cycles = sum(fold_cycles)
    total_reads = sum(read_per_fold)
    total_writes = sum(write_per_fold)
    n = len(fold_cycles)
    if n == 1:
        # Single fold: everything must move within the fold itself.
        peak_read = read_per_fold[0] / fold_cycles[0]
        peak_write = write_per_fold[0] / fold_cycles[0]
    elif max(max(read_per_fold), max(write_per_fold), max(fold_cycles)) < _EXACT_FLOAT_LIMIT:
        reads = np.asarray(read_per_fold, dtype=np.float64)
        writes = np.asarray(write_per_fold, dtype=np.float64)
        cycles = np.asarray(fold_cycles, dtype=np.float64)
        # Fold k's operands prefetch during fold k-1.
        peak_read = float(np.max(reads[1:] / cycles[:-1]))
        # Fold k-1's outputs drain during fold k; the final fold's
        # outputs also need one fold-time to drain.
        peak_write = float(
            max(np.max(writes[:-1] / cycles[1:]), writes[-1] / cycles[-1])
        )
    else:
        peak_read = 0.0
        peak_write = 0.0
        for k in range(1, n):
            peak_read = max(peak_read, read_per_fold[k] / fold_cycles[k - 1])
            peak_write = max(peak_write, write_per_fold[k - 1] / fold_cycles[k])
        peak_write = max(peak_write, write_per_fold[-1] / fold_cycles[-1])
    return BandwidthProfile(
        avg_read_bw=total_reads / total_cycles,
        avg_write_bw=total_writes / total_cycles,
        peak_read_bw=peak_read,
        peak_write_bw=peak_write,
    )


# ----------------------------------------------------------------------
# Closed-form fast path
# ----------------------------------------------------------------------

def _probe_slice_elements(
    engine: DataflowEngine,
    which: str,
    axis: str,
    classes: Sequence[Tuple[Fold, int]],
) -> Optional[Dict[Hashable, int]]:
    """Probe representative folds and map axis key -> slice elements.

    Returns ``None`` when the engine's actual slices contradict its
    declared axis (wrong ``slice_id`` structure, or element counts that
    vary along the supposedly irrelevant axis) — the caller then falls
    back to the exhaustive walk.
    """
    elems: Dict[Hashable, int] = {}
    for fold, _ in classes:
        piece = engine.ifmap_slice(fold) if which == "ifmap" else engine.filter_slice(fold)
        if axis == "row":
            expected: Hashable = ("row", fold.row_index)
            key: Hashable = fold.row_index
        elif axis == "col":
            expected = ("col", fold.col_index)
            key = fold.col_index
        elif axis == "tile":
            expected = ("tile", fold.row_index, fold.col_index)
            key = (fold.row_index, fold.col_index)
        else:
            return None
        if piece.slice_id != expected:
            return None
        if key in elems and elems[key] != piece.elements:
            return None
        elems[key] = piece.elements
    return elems


def _per_fold_shape_values(
    value: Callable[[int, int], int],
    outer: Sequence[Tuple[int, int, int]],
    inner: Sequence[Tuple[int, int, int]],
    order: str,
) -> List[int]:
    """Assemble a per-fold list (loop order) of a shape-only quantity.

    ``value(row_index, col_index)`` is evaluated once per shape class
    (<= 4 calls); the full F-entry list is built by list repetition.
    """
    out: List[int] = []
    for _, o_count, oi in outer:
        block: List[int] = []
        for _, i_count, ii in inner:
            ri, ci = (oi, ii) if order == "row" else (ii, oi)
            block += [value(ri, ci)] * i_count
        out += block * o_count
    return out


def _closed_form_operand(
    stream: str,
    axis: str,
    elems: Dict[Hashable, int],
    unique_elements: int,
    buffer: DoubleBuffer,
    word_bytes: int,
    outer: Sequence[Tuple[int, int, int]],
    inner: Sequence[Tuple[int, int, int]],
    order: str,
) -> OperandTraffic:
    """Reproduce :func:`operand_dram_traffic` from shape classes.

    The declared slice axis fixes the slice-id change pattern over the
    fold sequence, so fetch decisions collapse per axis class:

    * axis == outer loop axis: a new slice on the first fold of each
      outer block, re-fetched within the block only when streaming;
    * axis == inner loop axis: the slice id changes on every fold when
      F_inner > 1 (fetch everywhere unless the whole operand fits, in
      which case only the first outer block pays); constant when
      F_inner == 1 (fetch once, or every fold when streaming);
    * axis == "tile": every fold brings a distinct slice — always fetch.
    """
    n_outer = sum(count for _, count, _ in outer)
    n_inner = sum(count for _, count, _ in inner)
    unique_bytes = unique_elements * word_bytes
    whole_fits = buffer.holds(unique_bytes)
    outer_axis = "row" if order == "row" else "col"
    inner_axis = "col" if order == "row" else "row"

    per_fold: List[int] = []
    if axis == "tile":
        def tile_bytes(ri: int, ci: int) -> int:
            return elems[(ri, ci)] * word_bytes

        per_fold = _per_fold_shape_values(tile_bytes, outer, inner, order)
    elif axis == outer_axis:
        for _, o_count, oi in outer:
            piece_bytes = elems[oi] * word_bytes
            streaming = not whole_fits and not buffer.holds(piece_bytes)
            rest = piece_bytes if streaming else 0
            per_fold += ([piece_bytes] + [rest] * (n_inner - 1)) * o_count
    elif axis == inner_axis:
        first_block: List[int] = []
        for _, i_count, ii in inner:
            first_block += [elems[ii] * word_bytes] * i_count
        if whole_fits:
            per_fold = first_block + [0] * (n_inner * (n_outer - 1))
        elif n_inner > 1:
            per_fold = first_block * n_outer
        else:
            piece_bytes = first_block[0]
            streaming = not buffer.holds(piece_bytes)
            rest = piece_bytes if streaming else 0
            per_fold = [piece_bytes] + [rest] * (n_outer - 1)
    else:  # pragma: no cover - guarded by the axis probe
        raise ValueError(f"unknown slice axis {axis!r}")
    return OperandTraffic(stream=stream, per_fold_bytes=per_fold, unique_bytes=unique_bytes)


def _closed_form_traffic(
    engine: DataflowEngine,
    buffers: BufferSet,
    word_bytes: int,
    loop_order: str,
) -> Optional[DramTraffic]:
    """The shape-class DRAM traffic computation, or ``None`` if the
    engine's declarations don't support it."""
    if not getattr(engine, "shape_uniform_folds", False):
        return None
    ifmap_axis = getattr(engine, "ifmap_slice_axis", None)
    filter_axis = getattr(engine, "filter_slice_axis", None)
    if ifmap_axis is None or filter_axis is None:
        return None

    plan = engine.plan
    classes = plan.shape_classes()
    ifmap_elems = _probe_slice_elements(engine, "ifmap", ifmap_axis, classes)
    filter_elems = _probe_slice_elements(engine, "filter", filter_axis, classes)
    if ifmap_elems is None or filter_elems is None:
        return None

    if loop_order == "row":
        outer, inner = plan.row_classes(), plan.col_classes()
    else:
        outer, inner = plan.col_classes(), plan.row_classes()

    reps = {(fold.row_index, fold.col_index): fold for fold, _ in classes}
    fold_cycles = _per_fold_shape_values(
        lambda ri, ci: engine.fold_cycles(reps[(ri, ci)]), outer, inner, loop_order
    )
    write_per_fold = _per_fold_shape_values(
        lambda ri, ci: engine.fold_ofmap_elements(reps[(ri, ci)]) * word_bytes,
        outer,
        inner,
        loop_order,
    )
    ifmap_traffic = _closed_form_operand(
        "ifmap", ifmap_axis, ifmap_elems, engine.m * engine.k,
        buffers.ifmap, word_bytes, outer, inner, loop_order,
    )
    filter_traffic = _closed_form_operand(
        "filter", filter_axis, filter_elems, engine.k * engine.n,
        buffers.filter, word_bytes, outer, inner, loop_order,
    )
    read_per_fold = [
        i_bytes + f_bytes
        for i_bytes, f_bytes in zip(ifmap_traffic.per_fold_bytes, filter_traffic.per_fold_bytes)
    ]
    bandwidth = _stall_free_bandwidths(read_per_fold, write_per_fold, fold_cycles)
    return DramTraffic(
        ifmap=ifmap_traffic,
        filter=filter_traffic,
        ofmap_per_fold_bytes=write_per_fold,
        cold_start_bytes=read_per_fold[0],
        fold_cycles=fold_cycles,
        bandwidth=bandwidth,
    )


def _iterative_traffic(
    engine: DataflowEngine,
    buffers: BufferSet,
    word_bytes: int,
    loop_order: str,
) -> DramTraffic:
    """Reference semantics: walk every fold of the plan."""
    folds = list(engine.plan.folds(order=loop_order))
    ifmap_slices = [engine.ifmap_slice(fold) for fold in folds]
    filter_slices = [engine.filter_slice(fold) for fold in folds]
    write_per_fold = [engine.fold_ofmap_elements(fold) * word_bytes for fold in folds]
    fold_cycles = [engine.fold_cycles(fold) for fold in folds]

    ifmap_traffic = operand_dram_traffic(
        ifmap_slices, engine.m * engine.k, buffers.ifmap, word_bytes
    )
    filter_traffic = operand_dram_traffic(
        filter_slices, engine.k * engine.n, buffers.filter, word_bytes
    )
    read_per_fold = [
        i_bytes + f_bytes
        for i_bytes, f_bytes in zip(ifmap_traffic.per_fold_bytes, filter_traffic.per_fold_bytes)
    ]
    bandwidth = _stall_free_bandwidths(read_per_fold, write_per_fold, fold_cycles)
    return DramTraffic(
        ifmap=ifmap_traffic,
        filter=filter_traffic,
        ofmap_per_fold_bytes=write_per_fold,
        cold_start_bytes=read_per_fold[0],
        fold_cycles=fold_cycles,
        bandwidth=bandwidth,
    )


def compute_dram_traffic(
    engine: DataflowEngine,
    buffers: BufferSet,
    word_bytes: int,
    loop_order: str = "row",
) -> DramTraffic:
    """Derive the full DRAM traffic picture for one layer on one array.

    ``loop_order`` selects the fold iteration order ("row" is
    SCALE-Sim's default; "col" transposes the loop nest).  Runtime is
    order-independent, but which operand enjoys consecutive-fold reuse
    is not — see the fold-order ablation benchmark.

    Uses the closed-form shape-class computation whenever the engine
    declares shape-uniform folds and its operand slice axes; falls back
    to the exhaustive per-fold walk otherwise.  The two paths are
    asserted identical by the equivalence tests.
    """
    if loop_order not in ("row", "col"):
        # Delegate the error to the fold iterator for a uniform message.
        return _iterative_traffic(engine, buffers, word_bytes, loop_order)
    fast = _closed_form_traffic(engine, buffers, word_bytes, loop_order)
    if fast is not None:
        return fast
    return _iterative_traffic(engine, buffers, word_bytes, loop_order)
