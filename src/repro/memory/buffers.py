"""Double-buffered SRAM model (Sec. II of the paper, Fig. 2).

Each of the three operand SRAMs is double buffered: while the array
consumes from one half, the other half prefetches the next working set
from DRAM.  The *effective* capacity available to the resident working
set is therefore half the physical SRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.hardware import HardwareConfig
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class DoubleBuffer:
    """One double-buffered SRAM of ``capacity_bytes`` physical bytes."""

    name: str
    capacity_bytes: int

    def __post_init__(self) -> None:
        check_positive_int(self.capacity_bytes, "capacity_bytes")

    @property
    def working_bytes(self) -> int:
        """Bytes available to the resident working set (half the SRAM)."""
        return self.capacity_bytes // 2

    def holds(self, bytes_needed: int) -> bool:
        """True when a working set of ``bytes_needed`` fits in one half."""
        return bytes_needed <= self.working_bytes


@dataclass(frozen=True)
class BufferSet:
    """The three operand buffers of one accelerator (IFMAP, filter, OFMAP)."""

    ifmap: DoubleBuffer
    filter: DoubleBuffer
    ofmap: DoubleBuffer

    @classmethod
    def from_config(cls, config: HardwareConfig) -> "BufferSet":
        """Build the buffer set described by a hardware configuration."""
        return cls(
            ifmap=DoubleBuffer("ifmap", config.ifmap_sram_bytes),
            filter=DoubleBuffer("filter", config.filter_sram_bytes),
            ofmap=DoubleBuffer("ofmap", config.ofmap_sram_bytes),
        )

    @property
    def total_bytes(self) -> int:
        return self.ifmap.capacity_bytes + self.filter.capacity_bytes + self.ofmap.capacity_bytes
