"""Fold-order reuse model: which operand slices must be (re)fetched.

SCALE-Sim derives the DRAM trace from the SRAM trace by asking, fold by
fold, whether the data a fold consumes is already resident in the
double-buffered SRAM.  This module implements that decision as a pure
function over the per-fold :class:`~repro.dataflow.base.OperandSlice`
sequence an engine produces:

* If the *entire* operand fits in the buffer's working half, every
  element is fetched exactly once (perfect reuse) — charged to the
  first fold that touches each slice.
* Otherwise a slice is fetched whenever it differs from the slice the
  previous fold used (the resident one), and re-fetched on every fold
  if a single slice alone overflows the working half (streaming).

Because fold order is row-major over the fold grid, this reproduces the
classic behaviour: under OS the IFMAP row-block is fetched once per row
fold while the filter col-blocks are re-fetched for every row fold
unless the whole filter matrix fits on chip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.dataflow.base import OperandSlice
from repro.memory.buffers import DoubleBuffer
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class OperandTraffic:
    """DRAM read traffic for one operand stream across a layer.

    ``per_fold_bytes[k]`` is what must be prefetched for fold ``k``;
    ``total_bytes`` is their sum; ``unique_bytes`` the operand's
    footprint.  ``refetch_factor`` = total / unique measures lost reuse
    (1.0 means every byte moved exactly once).
    """

    stream: str
    per_fold_bytes: List[int]
    unique_bytes: int

    @property
    def total_bytes(self) -> int:
        return sum(self.per_fold_bytes)

    @property
    def refetch_factor(self) -> float:
        if self.unique_bytes == 0:
            return 0.0
        return self.total_bytes / self.unique_bytes


def operand_dram_traffic(
    slices: Sequence[OperandSlice],
    unique_elements: int,
    buffer: DoubleBuffer,
    word_bytes: int,
) -> OperandTraffic:
    """Compute per-fold DRAM fetch bytes for one operand stream.

    ``slices`` lists, in fold-execution order, the operand chunk each
    fold needs; ``unique_elements`` is the operand matrix footprint.
    """
    check_positive_int(word_bytes, "word_bytes")
    check_positive_int(unique_elements, "unique_elements")
    if not slices:
        raise ValueError("slices must be non-empty")
    stream = slices[0].stream
    for piece in slices:
        if piece.stream != stream:
            raise ValueError(
                f"mixed operand streams in one traffic computation: "
                f"{stream!r} vs {piece.stream!r}"
            )

    unique_bytes = unique_elements * word_bytes
    per_fold: List[int] = []

    if buffer.holds(unique_bytes):
        # Whole operand fits: each distinct slice is fetched exactly once,
        # on the first fold that touches it.
        seen = set()
        for piece in slices:
            if piece.slice_id in seen:
                per_fold.append(0)
            else:
                seen.add(piece.slice_id)
                per_fold.append(piece.elements * word_bytes)
        return OperandTraffic(stream=stream, per_fold_bytes=per_fold, unique_bytes=unique_bytes)

    previous_id = None
    for piece in slices:
        piece_bytes = piece.elements * word_bytes
        streaming = not buffer.holds(piece_bytes)
        if streaming or piece.slice_id != previous_id:
            per_fold.append(piece_bytes)
        else:
            per_fold.append(0)
        previous_id = piece.slice_id
    return OperandTraffic(stream=stream, per_fold_bytes=per_fold, unique_bytes=unique_bytes)
