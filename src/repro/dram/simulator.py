"""Top-level DRAM simulator: route requests to channels, gather stats."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.dram.channel import Channel, ServicedRequest
from repro.dram.request import DramAccess, decode
from repro.dram.timing import DDR4_2400_LIKE, DramTiming
from repro.errors import DramError
from repro.obs import metrics, trace


@dataclass(frozen=True)
class DramStats:
    """Aggregate outcome of replaying one trace."""

    num_requests: int
    num_reads: int
    num_writes: int
    first_cycle: int
    last_finish_cycle: int
    total_latency: int
    row_hits: int
    bytes_moved: int

    @property
    def span_cycles(self) -> int:
        """Cycles from first arrival to last completion."""
        return max(1, self.last_finish_cycle - self.first_cycle)

    @property
    def achieved_bandwidth(self) -> float:
        """Bytes per cycle actually sustained over the trace span."""
        return self.bytes_moved / self.span_cycles

    @property
    def avg_latency(self) -> float:
        return self.total_latency / max(1, self.num_requests)

    @property
    def row_hit_rate(self) -> float:
        return self.row_hits / max(1, self.num_requests)


class DramSimulator:
    """Replay a (cycle, address, is_write) trace through the device model."""

    def __init__(self, timing: DramTiming = DDR4_2400_LIKE, reorder_window: int = 8):
        self.timing = timing
        self.reorder_window = reorder_window

    def run(self, requests: Iterable[DramAccess]) -> DramStats:
        """Service the whole trace and return aggregate statistics."""
        all_requests = list(requests)
        if not all_requests:
            raise DramError("empty DRAM trace")

        with trace.span(
            "dram.run",
            requests=len(all_requests),
            channels=self.timing.num_channels,
        ):
            per_channel: List[List[DramAccess]] = [
                [] for _ in range(self.timing.num_channels)
            ]
            for request in all_requests:
                per_channel[decode(request.address, self.timing).channel].append(request)

            serviced: List[ServicedRequest] = []
            for channel_requests in per_channel:
                if not channel_requests:
                    continue
                channel = Channel(self.timing, window=self.reorder_window)
                serviced.extend(channel.service(channel_requests))

        if metrics.enabled:
            metrics.counter("dram.requests").add(len(serviced))
            metrics.counter("dram.row_hits").add(
                sum(1 for item in serviced if item.row_hit)
            )
            metrics.counter("dram.bytes_moved").add(
                len(serviced) * self.timing.line_bytes
            )
            metrics.counter("dram.stall_cycles").add(
                sum(item.latency for item in serviced)
            )
            latency = metrics.histogram("dram.request_latency")
            for item in serviced:
                latency.observe(item.latency)

        return DramStats(
            num_requests=len(serviced),
            num_reads=sum(1 for item in serviced if not item.request.is_write),
            num_writes=sum(1 for item in serviced if item.request.is_write),
            first_cycle=min(item.request.cycle for item in serviced),
            last_finish_cycle=max(item.finish_cycle for item in serviced),
            total_latency=sum(item.latency for item in serviced),
            row_hits=sum(1 for item in serviced if item.row_hit),
            bytes_moved=len(serviced) * self.timing.line_bytes,
        )

    def sustainable(self, demanded_bandwidth: float) -> bool:
        """Quick feasibility check against the device's peak bandwidth."""
        return demanded_bandwidth <= self.timing.peak_bandwidth
