"""Per-channel command scheduling with open-page policy.

Each channel owns a set of banks and one shared data bus.  Requests are
serviced in arrival order with a bounded first-ready (FR-FCFS-style)
reorder window: among the oldest ``window`` pending requests, a row hit
is preferred over the queue head, which keeps streams from thrashing
open rows without starving anyone for long.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dram.request import DramAccess, decode
from repro.dram.timing import DramTiming


@dataclass
class _BankState:
    open_row: Optional[int] = None
    ready_cycle: int = 0  # bank may accept a new column command
    activated_cycle: int = 0  # when the open row was activated (for tRAS)


@dataclass
class ServicedRequest:
    """One completed transaction with its measured timing."""

    request: DramAccess
    start_cycle: int
    finish_cycle: int
    row_hit: bool

    @property
    def latency(self) -> int:
        return self.finish_cycle - self.request.cycle


class Channel:
    """Scheduler and timing model for one DRAM channel."""

    def __init__(self, timing: DramTiming, window: int = 8):
        self.timing = timing
        self.window = max(1, window)
        self._banks: Dict[int, _BankState] = {}
        self._bus_free = 0
        self._last_was_write = False

    def _skip_refresh(self, cycle: int) -> int:
        """Push ``cycle`` past any refresh blackout it falls into.

        A refresh command issues every ``t_refi`` cycles and blocks all
        banks for ``t_rfc``: the window ``[k*t_refi, k*t_refi + t_rfc)``
        is unusable for every ``k >= 1``.
        """
        t_refi = self.timing.t_refi
        if not t_refi:
            return cycle
        k = cycle // t_refi
        if k >= 1 and cycle < k * t_refi + self.timing.t_rfc:
            return k * t_refi + self.timing.t_rfc
        return cycle

    def _bank(self, index: int) -> _BankState:
        if index not in self._banks:
            self._banks[index] = _BankState()
        return self._banks[index]

    def service(self, requests: List[DramAccess]) -> List[ServicedRequest]:
        """Service all requests (already filtered to this channel)."""
        # Stable sort by arrival cycle only: requests issued in the same
        # cycle keep their submission order (FCFS baseline).
        pending = sorted(requests, key=lambda req: req.cycle)
        done: List[ServicedRequest] = []
        while pending:
            index = self._pick(pending)
            request = pending.pop(index)
            done.append(self._execute(request))
        return done

    # ------------------------------------------------------------------
    def _pick(self, pending: List[DramAccess]) -> int:
        """Index of the next request: first row-hit in the reorder window,
        but never past a request that arrived before the bus went idle."""
        head = pending[0]
        horizon = max(self._bus_free, head.cycle)
        for index in range(min(self.window, len(pending))):
            candidate = pending[index]
            if candidate.cycle > horizon:
                break
            bank = self._bank(decode(candidate.address, self.timing).bank)
            row = decode(candidate.address, self.timing).row
            if bank.open_row == row:
                return index
        return 0

    def _execute(self, request: DramAccess) -> ServicedRequest:
        timing = self.timing
        coords = decode(request.address, timing)
        bank = self._bank(coords.bank)
        start = self._skip_refresh(max(request.cycle, bank.ready_cycle))

        row_hit = bank.open_row == coords.row
        if not row_hit:
            if bank.open_row is not None:
                # Respect tRAS before precharging the currently open row.
                start = max(start, bank.activated_cycle + timing.t_ras)
                start += timing.t_rp
            start += timing.t_rcd
            start = self._skip_refresh(start)
            bank.open_row = coords.row
            bank.activated_cycle = start

        # Column access, then the burst on the shared data bus; switching
        # the bus from writes back to reads pays the turnaround penalty.
        bus_ready = self._bus_free
        if self._last_was_write and not request.is_write:
            bus_ready += timing.t_wtr
        data_start = self._skip_refresh(max(start + timing.t_cl, bus_ready))
        finish = data_start + timing.t_burst
        self._bus_free = finish
        self._last_was_write = request.is_write
        bank.ready_cycle = data_start
        return ServicedRequest(
            request=request, start_cycle=start, finish_cycle=finish, row_hit=row_hit
        )
