"""Cycle-level DRAM back-end (the DRAMSim2 stand-in of Sec. II-B).

SCALE-Sim emits DRAM traces meant to be replayed through a memory
simulator; this package provides one: a multi-channel, multi-bank
model with open-page policy, first-ready scheduling and classic
tRCD/tCL/tRP/tRAS timing.  It answers the question the paper poses in
Fig. 11 — whether a real DRAM device can sustain the stall-free
bandwidth the accelerator demands.
"""

from repro.dram.timing import DramTiming, DDR4_2400_LIKE
from repro.dram.request import DramAccess
from repro.dram.simulator import DramSimulator, DramStats

__all__ = [
    "DramTiming",
    "DDR4_2400_LIKE",
    "DramAccess",
    "DramSimulator",
    "DramStats",
]
