"""DRAM request record and address decomposition."""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import DramTiming
from repro.errors import DramError


@dataclass(frozen=True)
class DramAccess:
    """One line-sized DRAM transaction as seen at the interface."""

    cycle: int
    address: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise DramError(f"cycle must be non-negative, got {self.cycle}")
        if self.address < 0:
            raise DramError(f"address must be non-negative, got {self.address}")


@dataclass(frozen=True)
class DecodedAddress:
    """Channel / bank / row coordinates of one access."""

    channel: int
    bank: int
    row: int


def decode(address: int, timing: DramTiming) -> DecodedAddress:
    """Map a byte address to (channel, bank, row).

    Line-interleaved across channels, then across banks, so sequential
    prefetch streams spread over all parallelism before reusing a bank —
    the layout DRAM controllers favour for streaming accelerators.
    """
    block = address // timing.line_bytes
    channel = block % timing.num_channels
    rest = block // timing.num_channels
    bank = rest % timing.banks_per_channel
    row = rest // timing.banks_per_channel // timing.lines_per_row
    return DecodedAddress(channel=channel, bank=bank, row=row)
