"""DRAM device timing and geometry parameters.

All latencies are in accelerator clock cycles for direct comparison
with the engine's cycle counts (the paper reports bandwidth in bytes
per accelerator cycle).  Defaults approximate a DDR4-2400 x64 channel
viewed from a 1 GHz accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DramError
from repro.utils.mathutils import is_power_of_two
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class DramTiming:
    """Geometry and timing of one DRAM configuration."""

    num_channels: int = 1
    banks_per_channel: int = 16
    row_bytes: int = 8192
    line_bytes: int = 64
    t_cl: int = 14  # column (CAS) latency
    t_rcd: int = 14  # row activate to column command
    t_rp: int = 14  # precharge
    t_ras: int = 32  # minimum row-open time
    t_burst: int = 4  # data-bus cycles one line transfer occupies
    t_refi: int = 7800  # refresh command interval (0 disables refresh)
    t_rfc: int = 350  # refresh cycle: all banks blocked this long
    t_wtr: int = 8  # write-to-read turnaround on the shared bus

    def __post_init__(self) -> None:
        check_positive_int(self.num_channels, "num_channels")
        check_positive_int(self.banks_per_channel, "banks_per_channel")
        check_positive_int(self.row_bytes, "row_bytes")
        check_positive_int(self.line_bytes, "line_bytes")
        for name in ("t_cl", "t_rcd", "t_rp", "t_ras", "t_burst"):
            check_positive_int(getattr(self, name), name)
        for name in ("t_refi", "t_rfc", "t_wtr"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise DramError(f"{name} must be a non-negative integer, got {value!r}")
        if self.t_refi and self.t_rfc >= self.t_refi:
            raise DramError("t_rfc must be smaller than t_refi")
        if not is_power_of_two(self.line_bytes):
            raise DramError(f"line_bytes must be a power of two, got {self.line_bytes}")
        if self.row_bytes % self.line_bytes:
            raise DramError("row_bytes must be a multiple of line_bytes")

    @property
    def lines_per_row(self) -> int:
        return self.row_bytes // self.line_bytes

    @property
    def peak_bandwidth(self) -> float:
        """Upper bound in bytes/cycle: every channel bursting back to back."""
        return self.num_channels * self.line_bytes / self.t_burst


#: Default device: one DDR4-2400-like channel (~19 GB/s at 1 GHz core).
DDR4_2400_LIKE = DramTiming()
