"""Report generation: aggregate metrics in CSV and human-readable form.

SCALE-Sim's second output class (Sec. II-E) is a set of report files
with cycle counts, utilizations, bandwidths and transfer totals parsed
out of the traces; these helpers produce the equivalent artifacts from
:class:`LayerResult` records.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from repro.engine.results import LayerResult, RunResult


def layer_report_rows(results: Union[RunResult, Iterable[LayerResult]]) -> List[Dict[str, object]]:
    """Flatten results into report rows (one dict per layer)."""
    layers = results.layers if isinstance(results, RunResult) else list(results)
    return [layer.as_row() for layer in layers]


def write_report_csv(
    results: Union[RunResult, Iterable[LayerResult]],
    path: Union[str, Path],
) -> Path:
    """Write the aggregate report as a CSV file and return its path."""
    rows = layer_report_rows(results)
    if not rows:
        raise ValueError("no results to report")
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    return path


def render_report(results: Union[RunResult, Iterable[LayerResult]], columns: Sequence[str] = ()) -> str:
    """Render results as an aligned text table.

    ``columns`` restricts and orders the columns; by default a compact
    set covering runtime, utilization and bandwidth is shown.
    """
    rows = layer_report_rows(results)
    if not rows:
        raise ValueError("no results to report")
    if not columns:
        columns = [
            "layer",
            "array",
            "partitions",
            "cycles",
            "mapping_util",
            "compute_util",
            "dram_read_bytes",
            "dram_write_bytes",
            "avg_read_bw",
            "peak_read_bw",
        ]
        # Partition-health columns appear only when they carry signal,
        # so healthy-run reports keep their original shape.
        for extra in ("idle_parts", "failed_parts", "remapped_tiles"):
            if any(row.get(extra) for row in rows):
                columns.append(extra)
    missing = [col for col in columns if col not in rows[0]]
    if missing:
        raise KeyError(f"unknown report columns: {missing}")
    header = list(columns)
    str_rows = [[str(row[col]) for col in header] for row in rows]
    widths = [
        max(len(header[i]), max(len(r[i]) for r in str_rows)) for i in range(len(header))
    ]
    lines = [
        "  ".join(header[i].ljust(widths[i]) for i in range(len(header))),
        "  ".join("-" * widths[i] for i in range(len(header))),
    ]
    lines.extend(
        "  ".join(r[i].ljust(widths[i]) for i in range(len(header))) for r in str_rows
    )
    if isinstance(results, RunResult):
        lines.append("")
        lines.append(
            f"total cycles: {results.total_cycles}   total MACs: {results.total_macs}   "
            f"DRAM rd/wr bytes: {results.total_dram_read_bytes}/{results.total_dram_write_bytes}"
        )
    return "\n".join(lines)
