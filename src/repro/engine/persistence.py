"""Persist simulation results as JSON.

Sweeps over big design spaces are expensive enough to be worth saving;
these helpers serialize :class:`LayerResult` / :class:`RunResult` to a
stable, versioned JSON schema and load them back bit-identically
(tested).  The schema is flat and explicit so non-Python tooling can
consume it too.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.config.hardware import Dataflow
from repro.dataflow.base import SramCounts
from repro.engine.results import LayerResult, RunResult
from repro.errors import ReproError
from repro.utils.atomicio import atomic_write_json

SCHEMA_VERSION = 1


def layer_result_to_dict(result: LayerResult) -> Dict:
    """Serialize one layer result to plain JSON-safe types."""
    return {
        "layer_name": result.layer_name,
        "dataflow": result.dataflow.value,
        "array_rows": result.array_rows,
        "array_cols": result.array_cols,
        "partition_rows": result.partition_rows,
        "partition_cols": result.partition_cols,
        "total_cycles": result.total_cycles,
        "macs": result.macs,
        "mapping_utilization": result.mapping_utilization,
        "compute_utilization": result.compute_utilization,
        "sram_ifmap_reads": result.sram.ifmap_reads,
        "sram_filter_reads": result.sram.filter_reads,
        "sram_ofmap_writes": result.sram.ofmap_writes,
        "dram_read_bytes": result.dram_read_bytes,
        "dram_write_bytes": result.dram_write_bytes,
        "cold_start_bytes": result.cold_start_bytes,
        "avg_read_bw": result.avg_read_bw,
        "avg_write_bw": result.avg_write_bw,
        "peak_read_bw": result.peak_read_bw,
        "peak_write_bw": result.peak_write_bw,
        "word_bytes": result.word_bytes,
        "row_folds": result.row_folds,
        "col_folds": result.col_folds,
        "idle_partitions": result.idle_partitions,
        "failed_partitions": result.failed_partitions,
        "remapped_tiles": result.remapped_tiles,
    }


def layer_result_from_dict(data: Dict) -> LayerResult:
    """Rebuild a layer result from its serialized form."""
    try:
        return LayerResult(
            layer_name=data["layer_name"],
            dataflow=Dataflow.from_string(data["dataflow"]),
            array_rows=data["array_rows"],
            array_cols=data["array_cols"],
            partition_rows=data["partition_rows"],
            partition_cols=data["partition_cols"],
            total_cycles=data["total_cycles"],
            macs=data["macs"],
            mapping_utilization=data["mapping_utilization"],
            compute_utilization=data["compute_utilization"],
            sram=SramCounts(
                ifmap_reads=data["sram_ifmap_reads"],
                filter_reads=data["sram_filter_reads"],
                ofmap_writes=data["sram_ofmap_writes"],
            ),
            dram_read_bytes=data["dram_read_bytes"],
            dram_write_bytes=data["dram_write_bytes"],
            cold_start_bytes=data["cold_start_bytes"],
            avg_read_bw=data["avg_read_bw"],
            avg_write_bw=data["avg_write_bw"],
            peak_read_bw=data["peak_read_bw"],
            peak_write_bw=data["peak_write_bw"],
            word_bytes=data["word_bytes"],
            row_folds=data["row_folds"],
            col_folds=data["col_folds"],
            # Absent in schema-1 files written before degraded mode.
            idle_partitions=data.get("idle_partitions", 0),
            failed_partitions=data.get("failed_partitions", 0),
            remapped_tiles=data.get("remapped_tiles", 0),
        )
    except KeyError as exc:
        raise ReproError(f"layer-result record missing field {exc}") from exc


def run_result_to_dict(run: RunResult) -> Dict:
    """Serialize a whole run."""
    return {
        "schema_version": SCHEMA_VERSION,
        "network_name": run.network_name,
        "config_description": run.config_description,
        "layers": [layer_result_to_dict(layer) for layer in run],
    }


def run_result_from_dict(data: Dict) -> RunResult:
    """Rebuild a run from its serialized form (schema-checked)."""
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ReproError(
            f"unsupported result schema version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    return RunResult(
        network_name=data["network_name"],
        config_description=data["config_description"],
        layers=[layer_result_from_dict(item) for item in data["layers"]],
    )


def save_run_result(run: RunResult, path: Union[str, Path]) -> Path:
    """Write a run to ``path`` as JSON (atomically); returns the path."""
    return atomic_write_json(path, run_result_to_dict(run))


def load_run_result(path: Union[str, Path]) -> RunResult:
    """Load a run previously written by :func:`save_run_result`."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"result file not found: {path}")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ReproError(f"malformed result file {path}: {exc}") from exc
    return run_result_from_dict(data)
