"""Simulation engines: single-array (scale-up) and partitioned (scale-out)."""

from repro.engine.results import LayerResult, RunResult
from repro.engine.simulator import Simulator
from repro.engine.scaleout import ScaleOutSimulator, PartitionShare
from repro.engine.reports import (
    layer_report_rows,
    render_report,
    write_report_csv,
)
from repro.engine.tracefiles import write_sram_trace_csv, dram_request_stream
from repro.engine.stalls import (
    StalledRuntime,
    bandwidth_limited_runtime,
    sweet_spot_bandwidth,
)
from repro.engine.sram_bandwidth import (
    SramBandwidthReport,
    demand_histogram,
    sram_bandwidth_report,
)
from repro.engine.interlayer import (
    chainable,
    interlayer_savings,
    run_network_with_interlayer_reuse,
)
from repro.engine.pipeline import (
    PipelineResult,
    StageResult,
    balance_stages,
    run_pipelined,
)
from repro.engine.roofline import RooflinePoint, roofline_point
from repro.engine.summary import RunSummary, amdahl_speedup_limit, summarize_run
from repro.engine.persistence import load_run_result, save_run_result

__all__ = [
    "LayerResult",
    "RunResult",
    "Simulator",
    "ScaleOutSimulator",
    "PartitionShare",
    "layer_report_rows",
    "render_report",
    "write_report_csv",
    "write_sram_trace_csv",
    "dram_request_stream",
    "StalledRuntime",
    "bandwidth_limited_runtime",
    "sweet_spot_bandwidth",
    "SramBandwidthReport",
    "demand_histogram",
    "sram_bandwidth_report",
    "chainable",
    "interlayer_savings",
    "run_network_with_interlayer_reuse",
    "PipelineResult",
    "StageResult",
    "balance_stages",
    "run_pipelined",
    "RooflinePoint",
    "roofline_point",
    "RunSummary",
    "amdahl_speedup_limit",
    "summarize_run",
    "load_run_result",
    "save_run_result",
]
