"""Roofline analysis of simulator results.

Caffeine (related work, Sec. V) sizes FPGA accelerators with roofline
modelling; the same lens summarizes our results: a layer's operational
intensity (MACs per DRAM byte) and the achieved compute rate, against
the machine's compute roof (its PE count) and the bandwidth roof
(intensity x DRAM bytes/cycle).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.results import LayerResult


@dataclass(frozen=True)
class RooflinePoint:
    """One layer's position in the roofline plane."""

    layer_name: str
    operational_intensity: float  # MACs per DRAM byte
    achieved_macs_per_cycle: float
    compute_roof: float  # PEs: MACs/cycle at full utilization
    bandwidth: float  # DRAM bytes/cycle provisioned

    @property
    def bandwidth_roof(self) -> float:
        """MACs/cycle the memory system alone would allow."""
        return self.operational_intensity * self.bandwidth

    @property
    def attainable(self) -> float:
        """The roofline: min(compute roof, bandwidth roof)."""
        return min(self.compute_roof, self.bandwidth_roof)

    @property
    def compute_bound(self) -> bool:
        """True when the compute roof is the binding constraint."""
        return self.compute_roof <= self.bandwidth_roof

    @property
    def efficiency(self) -> float:
        """Achieved rate as a fraction of the attainable roof."""
        return self.achieved_macs_per_cycle / self.attainable

    @property
    def ridge_intensity(self) -> float:
        """Operational intensity where the two roofs meet."""
        return self.compute_roof / self.bandwidth


def roofline_point(result: LayerResult, bandwidth: float) -> RooflinePoint:
    """Place one simulated layer in the roofline plane.

    ``bandwidth`` is the provisioned DRAM bandwidth in bytes per cycle
    (the stall-free simulation assumed it was sufficient; the roofline
    shows how much headroom or optimism that assumption carries).
    """
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    if result.dram_total_bytes == 0:
        raise ValueError("layer moved no DRAM bytes; intensity undefined")
    return RooflinePoint(
        layer_name=result.layer_name,
        operational_intensity=result.macs / result.dram_total_bytes,
        achieved_macs_per_cycle=result.macs / result.total_cycles,
        compute_roof=float(result.total_pes),
        bandwidth=bandwidth,
    )
