"""Trace-file emission: SCALE-Sim's first output class (Sec. II-E).

Two artifacts are produced:

* **SRAM trace CSVs** — one row per cycle listing the addresses read
  (or written) that cycle, exactly like the original tool's
  ``*_sram_read.csv`` / ``*_sram_write.csv`` files.
* **DRAM request streams** — the prefetch schedule the double-buffer
  model implies, lowered to (cycle, address, is_write) triples that a
  DRAM back-end (:mod:`repro.dram`) can consume.  Fetches for fold
  ``k`` are spread evenly across fold ``k-1``'s execution window;
  writebacks for fold ``k`` across fold ``k+1``'s.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Tuple, Union

from repro.dataflow.base import AddressLayout, DataflowEngine
from repro.memory.bandwidth import DramTraffic


def write_sram_trace_csv(
    engine: DataflowEngine,
    layout: AddressLayout,
    directory: Union[str, Path],
    prefix: str = "layer",
) -> Tuple[Path, Path]:
    """Write read and write SRAM traces; returns (read_path, write_path).

    Only use for small configurations: the files contain one row per
    cycle with every address touched that cycle.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    read_path = directory / f"{prefix}_sram_read.csv"
    write_path = directory / f"{prefix}_sram_write.csv"
    with read_path.open("w") as reads, write_path.open("w") as writes:
        for row in engine.layer_trace(layout):
            addrs = list(row.ifmap_addrs) + list(row.filter_addrs)
            if addrs:
                reads.write(f"{row.cycle}," + ",".join(map(str, addrs)) + ",\n")
            if row.ofmap_addrs:
                writes.write(f"{row.cycle}," + ",".join(map(str, row.ofmap_addrs)) + ",\n")
    return read_path, write_path


@dataclass(frozen=True)
class DramRequest:
    """One DRAM transaction of ``line_bytes`` at ``cycle``."""

    cycle: int
    address: int
    is_write: bool


def dram_request_stream(
    traffic: DramTraffic,
    layout: AddressLayout,
    line_bytes: int = 64,
) -> Iterator[DramRequest]:
    """Lower a layer's DRAM traffic into a timed request stream.

    Addresses walk each operand region sequentially (prefetches are
    bulk, linear transfers in SCALE-Sim's model); request timestamps
    spread each fold's transfer uniformly over the fold it overlaps
    with.  The stream is suitable for :class:`repro.dram.DramSimulator`.
    """
    if line_bytes <= 0:
        raise ValueError(f"line_bytes must be positive, got {line_bytes}")
    fold_cycles = traffic.fold_cycles
    fold_starts: List[int] = [0]
    for cycles in fold_cycles[:-1]:
        fold_starts.append(fold_starts[-1] + cycles)
    total_cycles = fold_starts[-1] + fold_cycles[-1]

    read_cursor = {"ifmap": layout.ifmap_offset, "filter": layout.filter_offset}
    write_cursor = layout.ofmap_offset

    per_fold_reads = [
        (("ifmap", i_bytes), ("filter", f_bytes))
        for i_bytes, f_bytes in zip(traffic.ifmap.per_fold_bytes, traffic.filter.per_fold_bytes)
    ]
    write_bytes_per_fold = list(traffic.ofmap_per_fold_bytes)

    events: List[DramRequest] = []
    for k, reads in enumerate(per_fold_reads):
        # Fold 0 prefetches before execution (cold start at cycle 0);
        # fold k prefetches during fold k-1.
        window_start = 0 if k == 0 else fold_starts[k - 1]
        window_len = fold_cycles[0] if k == 0 else fold_cycles[k - 1]
        for stream, nbytes in reads:
            lines = -(-nbytes // line_bytes) if nbytes else 0
            for j in range(lines):
                cycle = window_start + (j * window_len) // max(lines, 1)
                events.append(DramRequest(cycle, read_cursor[stream], False))
                read_cursor[stream] += line_bytes
        # Fold k's outputs drain during fold k+1 (or right after the end).
        wb = write_bytes_per_fold[k]
        drain_start = fold_starts[k + 1] if k + 1 < len(fold_starts) else total_cycles
        drain_len = fold_cycles[k + 1] if k + 1 < len(fold_cycles) else fold_cycles[-1]
        lines = -(-wb // line_bytes) if wb else 0
        for j in range(lines):
            cycle = drain_start + (j * drain_len) // max(lines, 1)
            events.append(DramRequest(cycle, write_cursor, True))
            write_cursor += line_bytes

    events.sort(key=lambda req: (req.cycle, req.is_write, req.address))
    return iter(events)
