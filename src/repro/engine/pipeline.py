"""Layer-pipelined scale-out — the other way to use a partition grid.

The paper's scale-out keeps every partition on the *same* layer (data
parallelism).  Related systems (Tangram's inter-layer pipelining,
Simba) instead assign groups of consecutive layers to partition groups
and stream samples through the pipeline.  This module models that mode
on top of the existing simulators:

* the network is cut into ``num_stages`` contiguous stages; boundaries
  are chosen by a classic linear-partition DP that minimizes the
  heaviest stage's MAC count;
* the grid's partitions are divided evenly among stages; each stage
  runs its layers data-parallel on its sub-grid (the normal
  :class:`ScaleOutSimulator` model with proportionally divided SRAM);
* per-sample *latency* is the sum of stage latencies, steady-state
  *throughput* is one sample per bottleneck-stage interval;
* tensors crossing a stage boundary are counted as forwarded traffic.

Comparing against pure data parallelism on the same grid quantifies
when pipelining pays: stages use smaller grids, so per-layer fold
overheads shrink, at the cost of pipeline imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.config.hardware import HardwareConfig
from repro.engine.results import RunResult
from repro.engine.scaleout import ScaleOutSimulator
from repro.engine.simulator import Simulator
from repro.errors import SimulationError
from repro.topology.network import Network
from repro.utils.validation import check_positive_int


def balance_stages(costs: Sequence[int], num_stages: int) -> List[Tuple[int, int]]:
    """Cut ``costs`` into ``num_stages`` contiguous ranges minimizing the
    maximum range sum (linear-partition DP).

    Returns half-open index ranges ``[(start, end), ...]`` covering the
    sequence.  Classic O(n^2 * k) dynamic program — networks have tens
    of layers, so this is instant.
    """
    n = len(costs)
    check_positive_int(num_stages, "num_stages")
    if num_stages > n:
        raise SimulationError(
            f"cannot cut {n} layers into {num_stages} non-empty stages"
        )
    prefix = [0] * (n + 1)
    for i, cost in enumerate(costs):
        prefix[i + 1] = prefix[i] + cost

    def range_sum(a: int, b: int) -> int:
        return prefix[b] - prefix[a]

    INF = float("inf")
    # best[k][i] = minimal bottleneck cutting the first i items into k stages
    best = [[INF] * (n + 1) for _ in range(num_stages + 1)]
    cut = [[0] * (n + 1) for _ in range(num_stages + 1)]
    best[0][0] = 0.0
    for k in range(1, num_stages + 1):
        for i in range(k, n + 1):
            for j in range(k - 1, i):
                candidate = max(best[k - 1][j], range_sum(j, i))
                if candidate < best[k][i]:
                    best[k][i] = candidate
                    cut[k][i] = j
    # Recover boundaries.
    bounds: List[Tuple[int, int]] = []
    i = n
    for k in range(num_stages, 0, -1):
        j = cut[k][i]
        bounds.append((j, i))
        i = j
    bounds.reverse()
    return bounds


@dataclass(frozen=True)
class StageResult:
    """One pipeline stage's assignment and measured cost."""

    index: int
    layer_names: Tuple[str, ...]
    partition_rows: int
    partition_cols: int
    latency: int
    macs: int
    dram_bytes: int
    run: RunResult

    @property
    def num_partitions(self) -> int:
        return self.partition_rows * self.partition_cols


@dataclass(frozen=True)
class PipelineResult:
    """A pipelined execution of one network on one grid."""

    stages: Tuple[StageResult, ...]
    serial_cycles: int  # the same network data-parallel on the full grid

    @property
    def latency(self) -> int:
        """Cycles for one sample to traverse all stages."""
        return sum(stage.latency for stage in self.stages)

    @property
    def interval(self) -> int:
        """Steady-state cycles between finished samples (bottleneck)."""
        return max(stage.latency for stage in self.stages)

    @property
    def bottleneck(self) -> StageResult:
        return max(self.stages, key=lambda stage: stage.latency)

    @property
    def throughput_speedup(self) -> float:
        """Steady-state speedup over data-parallel on the same grid."""
        return self.serial_cycles / self.interval

    @property
    def imbalance(self) -> float:
        """Bottleneck latency / mean stage latency (1.0 = perfect)."""
        mean = self.latency / len(self.stages)
        return self.interval / mean


def _square_grid(count: int) -> Tuple[int, int]:
    rows = 1
    while rows * rows < count:
        rows <<= 1
    return (count // rows, rows)


def run_pipelined(
    network: Network,
    config: HardwareConfig,
    num_stages: int,
) -> PipelineResult:
    """Execute ``network`` as a ``num_stages`` pipeline on ``config``'s grid.

    The grid's partitions are split evenly across stages (remainders go
    to the earliest stages); each stage's share of the total SRAM is
    proportional to its partitions.
    """
    total_partitions = config.num_partitions
    if num_stages > total_partitions:
        raise SimulationError(
            f"{num_stages} stages need at least that many partitions "
            f"(grid has {total_partitions})"
        )
    costs = [layer.macs for layer in network]
    bounds = balance_stages(costs, num_stages)

    base, extra = divmod(total_partitions, num_stages)
    layer_list = list(network)
    stages: List[StageResult] = []
    for index, (start, end) in enumerate(bounds):
        stage_partitions = base + (1 if index < extra else 0)
        grid = _square_grid(stage_partitions)
        share = stage_partitions / total_partitions
        stage_config = HardwareConfig(
            array_rows=config.array_rows,
            array_cols=config.array_cols,
            partition_rows=grid[0],
            partition_cols=grid[1],
            ifmap_sram_kb=max(1, int(config.ifmap_sram_kb * share)),
            filter_sram_kb=max(1, int(config.filter_sram_kb * share)),
            ofmap_sram_kb=max(1, int(config.ofmap_sram_kb * share)),
            dataflow=config.dataflow,
            word_bytes=config.word_bytes,
        )
        stage_layers = layer_list[start:end]
        stage_net = Network(f"{network.name}-stage{index}", stage_layers)
        if stage_config.is_monolithic:
            run = Simulator(stage_config).run_network(stage_net)
        else:
            run = ScaleOutSimulator(stage_config).run_network(stage_net)
        stages.append(
            StageResult(
                index=index,
                layer_names=tuple(layer.name for layer in stage_layers),
                partition_rows=grid[0],
                partition_cols=grid[1],
                latency=run.total_cycles,
                macs=run.total_macs,
                dram_bytes=run.total_dram_read_bytes + run.total_dram_write_bytes,
                run=run,
            )
        )

    if config.is_monolithic:
        serial = Simulator(config).run_network(network).total_cycles
    else:
        serial = ScaleOutSimulator(config).run_network(network).total_cycles
    return PipelineResult(stages=tuple(stages), serial_cycles=serial)
