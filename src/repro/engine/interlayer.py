"""Inter-layer on-chip reuse — a future-work extension of the paper.

SCALE-Sim (and our faithful engine) charges every layer a cold IFMAP
fetch from DRAM, even though one layer's OFMAP usually *is* the next
layer's IFMAP.  Follow-on accelerator work (Tangram's inter-layer
dataflow, Simba's on-package forwarding) exploits exactly that link;
this module models the first-order version of the idea on top of the
existing simulator:

* Two consecutive layers *chain* when the producer's output element
  count equals the consumer's raw input tensor (lowered GEMMs compare
  against their operand matrix, convolutions against the un-lowered
  H x W x C tensor, since im2col re-reads from the resident tensor).
* If the whole produced OFMAP fits in the OFMAP SRAM's working half, it
  simply stays on chip: the consumer's IFMAP DRAM reads are served from
  it, and the producer's DRAM writeback is skipped too.

The result is a :class:`RunResult` whose layers carry reduced DRAM
traffic; cycle counts are untouched (forwarding happens during the
already-counted transfer windows).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from repro.engine.results import LayerResult, RunResult
from repro.engine.simulator import Simulator
from repro.topology.layer import ConvLayer, Layer
from repro.topology.network import Network


def chainable(producer: Layer, consumer: Layer) -> bool:
    """True when the producer's OFMAP is exactly the consumer's input.

    Spatially this requires matching element counts; convolutions
    consume their raw (pre-im2col) tensor, GEMMs their operand matrix.
    """
    if isinstance(consumer, ConvLayer):
        needed = consumer.raw_ifmap_elements
    else:
        needed = consumer.ifmap_elements
    return producer.ofmap_elements == needed


def run_network_with_interlayer_reuse(
    simulator: Simulator,
    network: Network,
) -> RunResult:
    """Simulate ``network`` forwarding chained OFMAPs on chip.

    Falls back to the plain per-layer behaviour wherever layers do not
    chain or the produced OFMAP overflows the working half of the OFMAP
    SRAM.
    """
    ofmap_working = simulator.buffers.ofmap.working_bytes
    word = simulator.config.word_bytes

    results: List[LayerResult] = []
    previous: Optional[Layer] = None
    forwarded = False  # previous layer's output stayed on chip
    for layer in network:
        result = simulator.run_layer(layer)
        if forwarded and previous is not None:
            # Consumer side: IFMAP comes from the resident OFMAP.
            saved_reads = result.dram_read_bytes
            ifmap_engine_bytes = _ifmap_read_bytes(simulator, layer)
            saved_reads = min(ifmap_engine_bytes, result.dram_read_bytes)
            result = replace(
                result,
                dram_read_bytes=result.dram_read_bytes - saved_reads,
                avg_read_bw=(result.dram_read_bytes - saved_reads) / result.total_cycles,
                cold_start_bytes=0,
            )
        fits = layer.ofmap_elements * word <= ofmap_working
        next_layer = _next_layer(network, layer)
        forward_next = (
            fits and next_layer is not None and chainable(layer, next_layer)
        )
        if forward_next:
            # Producer side: the output never leaves the chip.
            result = replace(
                result,
                dram_write_bytes=0,
                avg_write_bw=0.0,
            )
        results.append(result)
        previous = layer
        forwarded = forward_next
    return RunResult(
        network_name=f"{network.name}+interlayer",
        config_description=simulator.config.describe() + ", inter-layer reuse",
        layers=results,
    )


def _next_layer(network: Network, layer: Layer) -> Optional[Layer]:
    names = network.layer_names()
    index = names.index(layer.name)
    if index + 1 < len(names):
        return network[index + 1]
    return None


def _ifmap_read_bytes(simulator: Simulator, layer: Layer) -> int:
    """The layer's IFMAP-side DRAM read bytes under the plain model."""
    from repro.memory.bandwidth import compute_dram_traffic

    engine = simulator.engine(layer)
    traffic = compute_dram_traffic(
        engine, simulator.buffers, simulator.config.word_bytes,
        loop_order=simulator.loop_order,
    )
    return traffic.ifmap.total_bytes


def interlayer_savings(simulator: Simulator, network: Network) -> float:
    """Fraction of total DRAM traffic removed by inter-layer forwarding."""
    plain = simulator.run_network(network)
    fused = run_network_with_interlayer_reuse(simulator, network)
    plain_bytes = plain.total_dram_read_bytes + plain.total_dram_write_bytes
    fused_bytes = fused.total_dram_read_bytes + fused.total_dram_write_bytes
    return 1.0 - fused_bytes / plain_bytes
