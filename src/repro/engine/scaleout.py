"""Partitioned (scale-out) cycle-accurate simulator.

Scale-out groups the MAC budget into a ``P_R x P_C`` grid of
independent ``R x C`` systolic arrays (paper Fig. 8).  The mapped
workload is tiled across the grid in mapped space (Eq. 5): partition
``(p, q)`` receives rows ``S_R/P_R`` and columns ``S_C/P_C`` (with
remainders spread over the leading partitions), and all partitions run
in parallel, so the layer latency is the slowest partition's latency
(Eq. 6).

The costs of partitioning emerge naturally from summing per-partition
traffic: each partition fetches its own operand slices, so data shared
across a grid row/column is fetched multiple times (the loss-of-reuse
cost of Sec. IV-A), and each partition owns only ``1/P`` of the SRAM.

Degraded grids (a :class:`~repro.resilience.FaultMap` with dead
partitions on the config) route through :func:`repro.resilience.remap
.remap_layer`: orphaned tiles are adopted by surviving partitions,
which run their assigned tiles serially, so the layer latency becomes
the slowest survivor's *summed* tile latency.  MAC conservation over
the re-mapped tiles is guarded, and the degraded runtime is
cross-checked against the same plan by the invariant guards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config.hardware import HardwareConfig
from repro.dataflow.base import SramCounts
from repro.engine.results import LayerResult, RunResult
from repro.engine.simulator import Simulator
from repro.errors import SimulationError
from repro.mapping.dims import gemm_from_mapping, map_layer
from repro.obs import metrics, trace
from repro.resilience.remap import RemapPlan, remap_layer
from repro.topology.layer import Layer
from repro.topology.network import Network
@dataclass(frozen=True)
class PartitionShare:
    """One equivalence class of partitions: same tile shape, same result."""

    count: int
    sr: int
    sc: int
    result: LayerResult


def _share_classes(total: int, parts: int) -> List[Tuple[int, int]]:
    """``(size, count)`` classes of ``split_evenly(total, parts)`` in O(1).

    ``split_evenly`` hands the first ``total % parts`` shares one extra
    element, so an axis has at most two distinct share sizes: ``base + 1``
    (``total % parts`` of them) and ``base`` (the rest).  Returned
    largest-first, zero-size classes included, so callers can both build
    the tile-shape multiset and count idle partitions without
    materializing the per-partition share list.
    """
    base, extra = divmod(total, parts)
    classes: List[Tuple[int, int]] = []
    if extra:
        classes.append((base + 1, extra))
    if parts - extra:
        classes.append((base, parts - extra))
    return classes


class ScaleOutSimulator:
    """Cycle-accurate simulator for a grid of systolic arrays."""

    def __init__(self, config: HardwareConfig):
        self.config = config
        # Each partition is a standalone array with 1/P of the SRAM
        # (carrying any PE row/column defects of the fault map).
        self._partition_sim = Simulator(config.partition_config())

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run_layer(self, layer: Layer) -> LayerResult:
        """Simulate one layer across the partition grid."""
        result, _ = self.run_layer_detailed(layer)
        return result

    def run_layer_detailed(self, layer: Layer) -> Tuple[LayerResult, List[PartitionShare]]:
        """Simulate one layer; also return the per-partition breakdown."""
        fault_map = self.config.fault_map
        degraded = fault_map is not None and fault_map.affects_grid
        with trace.span(
            "engine.scaleout_layer",
            layer=layer.name,
            grid=f"{self.config.partition_rows}x{self.config.partition_cols}",
            degraded=degraded,
        ):
            return self._run_layer_partitioned(layer, degraded)

    def _run_layer_partitioned(
        self, layer: Layer, degraded: bool
    ) -> Tuple[LayerResult, List[PartitionShare]]:
        if degraded:
            return self._run_layer_degraded(layer)
        mapping = map_layer(layer, self.config.dataflow)
        row_classes = _share_classes(mapping.sr, self.config.partition_rows)
        col_classes = _share_classes(mapping.sc, self.config.partition_cols)

        # Group identical tile shapes: split_evenly yields at most two
        # distinct sizes per axis, so at most four simulations run.  The
        # class product is O(1) in the grid size — a 64x64 grid costs the
        # same four multiplies as a 2x2 one.
        shape_counts: Dict[Tuple[int, int], int] = {}
        busy = 0
        for r, row_count in row_classes:
            for c, col_count in col_classes:
                if r == 0 or c == 0:
                    continue
                shape_counts[(r, c)] = (
                    shape_counts.get((r, c), 0) + row_count * col_count
                )
                busy += row_count * col_count

        # Partitions beyond the workload extent sit idle.
        idle = self.config.num_partitions - busy
        if not shape_counts:
            raise SimulationError(
                f"layer {layer.name!r}: no partition received work on a "
                f"{self.config.partition_rows}x{self.config.partition_cols} grid"
            )

        shares = self._simulate_shapes(layer, mapping.t, shape_counts)
        runtime = max(share.result.total_cycles for share in shares)
        return self._aggregate(layer, shares, runtime, idle_partitions=idle), shares

    def run_network(self, network: Network) -> RunResult:
        """Simulate every layer of ``network`` serially on the grid."""
        results = [self.run_layer(layer) for layer in network]
        return RunResult(
            network_name=network.name,
            config_description=self.config.describe(),
            layers=results,
        )

    # ------------------------------------------------------------------
    # Degraded path
    # ------------------------------------------------------------------
    def _run_layer_degraded(self, layer: Layer) -> Tuple[LayerResult, List[PartitionShare]]:
        """Simulate on a grid with dead partitions, re-mapping their work.

        The remap plan (MAC-conservation-guarded inside
        :func:`remap_layer`) assigns every tile to a survivor; survivors
        with several tiles run them back to back, so the grid's runtime
        is the slowest survivor's serial total.
        """
        config = self.config
        mapping = map_layer(layer, config.dataflow)
        plan: RemapPlan = remap_layer(
            mapping,
            config.partition_rows,
            config.partition_cols,
            config.effective_array_rows,
            config.effective_array_cols,
            config.fault_map,
        )

        shape_counts: Dict[Tuple[int, int], int] = {}
        for assignment in plan.assignments:
            shape = (assignment.sr, assignment.sc)
            shape_counts[shape] = shape_counts.get(shape, 0) + 1
        shares = self._simulate_shapes(layer, mapping.t, shape_counts)
        by_shape = {(s.sr, s.sc): s.result for s in shares}

        # Slowest survivor's serial runtime over its assigned tiles.
        runtime = max(
            sum(by_shape[(a.sr, a.sc)].total_cycles for a in tiles)
            for tiles in plan.per_owner().values()
        )

        survivors = len(plan.survivors)
        # Fraction of provisioned survivor PE-time carrying valid
        # mappings: each tile contributes its utilization weighted by
        # the cycles it actually occupies an array.
        mapped_pe_time = sum(
            by_shape[(a.sr, a.sc)].mapping_utilization
            * by_shape[(a.sr, a.sc)].total_cycles
            for a in plan.assignments
        )
        mapping_util = mapped_pe_time / (survivors * runtime)
        surviving_pes = (
            config.effective_array_rows * config.effective_array_cols * survivors
        )
        result = self._aggregate(
            layer,
            shares,
            runtime,
            idle_partitions=plan.idle_partitions,
            failed_partitions=plan.failed_partitions,
            remapped_tiles=plan.remapped_tiles,
            mapping_utilization=mapping_util,
            compute_pes=surviving_pes,
        )
        return result, shares

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _simulate_shapes(
        self, layer: Layer, temporal: int, shape_counts: Dict[Tuple[int, int], int]
    ) -> List[PartitionShare]:
        """Run the partition engine once per distinct tile shape."""
        shares: List[PartitionShare] = []
        for (sr, sc), count in sorted(shape_counts.items(), reverse=True):
            m, k, n = gemm_from_mapping(sr, sc, temporal, self.config.dataflow)
            with trace.span(
                "engine.partition_tile", layer=layer.name, sr=sr, sc=sc, count=count
            ):
                part_result = self._partition_sim.run_gemm(
                    m, k, n, name=f"{layer.name}[{sr}x{sc}]"
                )
            shares.append(PartitionShare(count=count, sr=sr, sc=sc, result=part_result))
        if metrics.enabled:
            metrics.counter("sim.tiles_mapped").add(
                sum(count for count in shape_counts.values())
            )
            metrics.counter("sim.tile_shapes").add(len(shape_counts))
        return shares

    def _aggregate(
        self,
        layer: Layer,
        shares: List[PartitionShare],
        runtime: int,
        idle_partitions: int = 0,
        failed_partitions: int = 0,
        remapped_tiles: int = 0,
        mapping_utilization: Optional[float] = None,
        compute_pes: Optional[int] = None,
    ) -> LayerResult:
        config = self.config
        num_partitions = config.num_partitions

        sram = SramCounts()
        dram_read = dram_write = cold_start = 0
        peak_read = peak_write = 0.0
        mapping_util_sum = 0.0
        macs = 0
        max_row_folds = max_col_folds = 0
        for share in shares:
            res = share.result
            sram = sram + res.sram * share.count
            dram_read += res.dram_read_bytes * share.count
            dram_write += res.dram_write_bytes * share.count
            cold_start += res.cold_start_bytes * share.count
            macs += res.macs * share.count
            # Worst case every partition prefetches at its peak at once:
            # the grid's interface must provision the sum.
            peak_read += res.peak_read_bw * share.count
            peak_write += res.peak_write_bw * share.count
            mapping_util_sum += res.mapping_utilization * share.count
            max_row_folds = max(max_row_folds, res.row_folds)
            max_col_folds = max(max_col_folds, res.col_folds)

        if mapping_utilization is None:
            mapping_utilization = mapping_util_sum / num_partitions
        total_pes = (
            compute_pes
            if compute_pes is not None
            else config.effective_array_rows * config.effective_array_cols * num_partitions
        )
        return LayerResult(
            layer_name=layer.name,
            dataflow=config.dataflow,
            array_rows=config.effective_array_rows,
            array_cols=config.effective_array_cols,
            partition_rows=config.partition_rows,
            partition_cols=config.partition_cols,
            total_cycles=runtime,
            macs=macs,
            mapping_utilization=mapping_utilization,
            compute_utilization=macs / (total_pes * runtime),
            sram=sram,
            dram_read_bytes=dram_read,
            dram_write_bytes=dram_write,
            cold_start_bytes=cold_start,
            avg_read_bw=dram_read / runtime,
            avg_write_bw=dram_write / runtime,
            peak_read_bw=peak_read,
            peak_write_bw=peak_write,
            word_bytes=config.word_bytes,
            row_folds=max_row_folds,
            col_folds=max_col_folds,
            idle_partitions=idle_partitions,
            failed_partitions=failed_partitions,
            remapped_tiles=remapped_tiles,
        )


def simulate(
    config: HardwareConfig,
    layer: Layer,
    verify: bool = False,
    rel_tol: float = 0.0,
) -> LayerResult:
    """Convenience front door: route to the right simulator for ``config``.

    With ``verify=True`` the result is cross-checked against the
    analytical model (Eq. 1-6, degraded-aware) before being returned;
    divergence beyond ``rel_tol`` raises
    :class:`~repro.errors.InvariantError`.
    """
    if config.is_monolithic:
        result = Simulator(config).run_layer(layer)
    else:
        result = ScaleOutSimulator(config).run_layer(layer)
    if verify:
        from repro.robust.invariants import check_layer_result

        check_layer_result(result, layer, config, rel_tol=rel_tol)
    return result
