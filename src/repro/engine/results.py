"""Result records produced by the simulators.

:class:`LayerResult` is the common currency of the whole library: the
single-array simulator, the scale-out simulator, the energy model and
the report writers all speak it.  Scale-out runs produce a LayerResult
describing the aggregate system (runtime = slowest partition, traffic =
summed over partitions) plus per-partition detail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config.hardware import Dataflow
from repro.dataflow.base import SramCounts


@dataclass(frozen=True)
class LayerResult:
    """Everything the simulator measured for one layer on one system."""

    layer_name: str
    dataflow: Dataflow
    array_rows: int
    array_cols: int
    partition_rows: int
    partition_cols: int
    total_cycles: int
    macs: int
    mapping_utilization: float
    compute_utilization: float
    sram: SramCounts
    dram_read_bytes: int
    dram_write_bytes: int
    cold_start_bytes: int
    avg_read_bw: float
    avg_write_bw: float
    peak_read_bw: float
    peak_write_bw: float
    word_bytes: int
    row_folds: int
    col_folds: int
    idle_partitions: int = 0
    failed_partitions: int = 0
    remapped_tiles: int = 0

    @property
    def num_partitions(self) -> int:
        return self.partition_rows * self.partition_cols

    @property
    def total_pes(self) -> int:
        """MAC units across the whole system (all partitions)."""
        return self.array_rows * self.array_cols * self.num_partitions

    @property
    def surviving_partitions(self) -> int:
        """Partitions still alive (all of them on healthy hardware)."""
        return self.num_partitions - self.failed_partitions

    @property
    def surviving_pes(self) -> int:
        """MAC units on surviving partitions only."""
        return self.array_rows * self.array_cols * self.surviving_partitions

    @property
    def is_degraded(self) -> bool:
        """True when this result was measured on faulty hardware."""
        return self.failed_partitions > 0 or self.remapped_tiles > 0

    @property
    def dram_total_bytes(self) -> int:
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def avg_total_bw(self) -> float:
        return self.avg_read_bw + self.avg_write_bw

    @property
    def peak_total_bw(self) -> float:
        return self.peak_read_bw + self.peak_write_bw

    def as_row(self) -> Dict[str, object]:
        """Flatten to the report-CSV row schema."""
        return {
            "layer": self.layer_name,
            "dataflow": self.dataflow.value,
            "array": f"{self.array_rows}x{self.array_cols}",
            "partitions": f"{self.partition_rows}x{self.partition_cols}",
            "cycles": self.total_cycles,
            "macs": self.macs,
            "mapping_util": round(self.mapping_utilization, 4),
            "compute_util": round(self.compute_utilization, 4),
            "sram_ifmap_reads": self.sram.ifmap_reads,
            "sram_filter_reads": self.sram.filter_reads,
            "sram_ofmap_writes": self.sram.ofmap_writes,
            "dram_read_bytes": self.dram_read_bytes,
            "dram_write_bytes": self.dram_write_bytes,
            "avg_read_bw": round(self.avg_read_bw, 4),
            "avg_write_bw": round(self.avg_write_bw, 4),
            "peak_read_bw": round(self.peak_read_bw, 4),
            "peak_write_bw": round(self.peak_write_bw, 4),
            "folds": self.row_folds * self.col_folds,
            "idle_parts": self.idle_partitions,
            "failed_parts": self.failed_partitions,
            "remapped_tiles": self.remapped_tiles,
        }


@dataclass(frozen=True)
class RunResult:
    """Results for a whole network on one configuration."""

    network_name: str
    config_description: str
    layers: Sequence[LayerResult] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "layers", tuple(self.layers))

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, key):
        if isinstance(key, str):
            for layer in self.layers:
                if layer.layer_name == key:
                    return layer
            raise KeyError(f"no result for layer {key!r}")
        return self.layers[key]

    @property
    def total_cycles(self) -> int:
        """Network latency: layers run serially (Sec. II-E)."""
        return sum(layer.total_cycles for layer in self.layers)

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_dram_read_bytes(self) -> int:
        return sum(layer.dram_read_bytes for layer in self.layers)

    @property
    def total_dram_write_bytes(self) -> int:
        return sum(layer.dram_write_bytes for layer in self.layers)

    @property
    def total_sram(self) -> SramCounts:
        total = SramCounts()
        for layer in self.layers:
            total = total + layer.sram
        return total

    @property
    def overall_compute_utilization(self) -> float:
        """MAC ops / (PEs x total cycles) across the run."""
        if not self.layers:
            return 0.0
        pes = self.layers[0].total_pes
        return self.total_macs / (pes * self.total_cycles)
