"""Run-level summaries: bottlenecks, utilization spread, traffic shares.

A :class:`RunResult` holds per-layer detail; these helpers answer the
questions an architect actually asks of a whole-network run: where did
the cycles go, which layers starve the array, and what fraction of the
DRAM traffic each layer is responsible for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.engine.results import LayerResult, RunResult


@dataclass(frozen=True)
class RunSummary:
    """Aggregates of one network run."""

    network_name: str
    total_cycles: int
    total_macs: int
    total_dram_bytes: int
    overall_utilization: float
    worst_utilization_layer: str
    worst_utilization: float
    top_cycle_layers: Tuple[Tuple[str, int, float], ...]  # (name, cycles, share)
    top_traffic_layers: Tuple[Tuple[str, int, float], ...]
    failed_partitions: int = 0
    idle_partitions: int = 0
    remapped_tiles: int = 0

    @property
    def is_degraded(self) -> bool:
        return self.failed_partitions > 0 or self.remapped_tiles > 0

    def describe(self) -> str:
        lines = [
            f"{self.network_name}: {self.total_cycles} cycles, "
            f"{self.total_macs} MACs, {self.total_dram_bytes} DRAM bytes, "
            f"{self.overall_utilization:.1%} overall utilization",
            f"least utilized layer: {self.worst_utilization_layer} "
            f"({self.worst_utilization:.1%})",
            "cycle hot spots:",
        ]
        lines.extend(
            f"  {name}: {cycles} cycles ({share:.1%})"
            for name, cycles, share in self.top_cycle_layers
        )
        lines.append("traffic hot spots:")
        lines.extend(
            f"  {name}: {volume} bytes ({share:.1%})"
            for name, volume, share in self.top_traffic_layers
        )
        if self.is_degraded:
            lines.append(
                f"degraded hardware: {self.failed_partitions} failed "
                f"partition(s), {self.remapped_tiles} tile(s) re-mapped, "
                f"{self.idle_partitions} survivor(s) idle"
            )
        elif self.idle_partitions:
            lines.append(f"idle partitions: {self.idle_partitions}")
        return "\n".join(lines)


def summarize_run(run: RunResult, top_k: int = 3) -> RunSummary:
    """Build the summary of one run; ``top_k`` bounds the hot-spot lists."""
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    layers: List[LayerResult] = list(run)
    total_cycles = run.total_cycles
    total_traffic = sum(layer.dram_total_bytes for layer in layers)

    by_cycles = sorted(layers, key=lambda layer: layer.total_cycles, reverse=True)
    by_traffic = sorted(layers, key=lambda layer: layer.dram_total_bytes, reverse=True)
    worst = min(layers, key=lambda layer: layer.compute_utilization)

    return RunSummary(
        network_name=run.network_name,
        total_cycles=total_cycles,
        total_macs=run.total_macs,
        total_dram_bytes=total_traffic,
        overall_utilization=run.overall_compute_utilization,
        worst_utilization_layer=worst.layer_name,
        worst_utilization=worst.compute_utilization,
        top_cycle_layers=tuple(
            (layer.layer_name, layer.total_cycles, layer.total_cycles / total_cycles)
            for layer in by_cycles[:top_k]
        ),
        top_traffic_layers=tuple(
            (
                layer.layer_name,
                layer.dram_total_bytes,
                layer.dram_total_bytes / max(1, total_traffic),
            )
            for layer in by_traffic[:top_k]
        ),
        # Hardware health is a run property: every layer sees the same
        # grid, so max (not sum) avoids double counting across layers.
        failed_partitions=max(layer.failed_partitions for layer in layers),
        idle_partitions=max(layer.idle_partitions for layer in layers),
        remapped_tiles=max(layer.remapped_tiles for layer in layers),
    )


def amdahl_speedup_limit(run: RunResult, layer_name: str) -> float:
    """Best whole-network speedup achievable by accelerating one layer
    infinitely — Amdahl's law over the run's cycle shares."""
    target = run[layer_name]
    share = target.total_cycles / run.total_cycles
    return 1.0 / (1.0 - share) if share < 1.0 else float("inf")
