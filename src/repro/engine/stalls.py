"""Bandwidth-limited (stalled) runtime — extension of the paper's model.

The paper reports the *stall-free* bandwidth an accelerator would need
(Fig. 11) and observes that at large scale it exceeds what DRAM can
deliver.  This module answers the follow-up question: *how slow does
the accelerator actually run on a device with a given bandwidth?*

Model: folds execute serially; the transfers pipelined against fold
``k`` are fold ``k+1``'s prefetch plus fold ``k-1``'s writeback, all
sharing one interface of ``bandwidth`` bytes/cycle.  Fold ``k`` cannot
retire faster than either its compute latency or the time to move those
bytes, so each fold contributes ``max(tau_k, bytes_k / bandwidth)``;
fold 0's operands have nothing to hide behind and are paid up front.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.memory.bandwidth import DramTraffic


@dataclass(frozen=True)
class StalledRuntime:
    """Runtime of one layer under a finite DRAM bandwidth."""

    bandwidth: float
    compute_cycles: int
    total_cycles: float
    cold_start_cycles: float

    @property
    def stall_cycles(self) -> float:
        return self.total_cycles - self.compute_cycles

    @property
    def slowdown(self) -> float:
        """Stalled runtime relative to the stall-free runtime."""
        return self.total_cycles / self.compute_cycles


def bandwidth_limited_runtime(traffic: DramTraffic, bandwidth: float) -> StalledRuntime:
    """Runtime of one layer when DRAM supplies ``bandwidth`` bytes/cycle.

    ``traffic`` is the per-fold transfer schedule produced by
    :func:`repro.memory.bandwidth.compute_dram_traffic`.  As
    ``bandwidth -> inf`` the result converges to the stall-free cycle
    count (plus a vanishing cold start); tests assert monotonicity in
    ``bandwidth`` and both limits.
    """
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")

    reads: List[int] = [
        i_bytes + f_bytes
        for i_bytes, f_bytes in zip(
            traffic.ifmap.per_fold_bytes, traffic.filter.per_fold_bytes
        )
    ]
    writes = list(traffic.ofmap_per_fold_bytes)
    cycles = traffic.fold_cycles
    folds = len(cycles)

    cold_start = reads[0] / bandwidth
    total = cold_start
    for k in range(folds):
        overlapped = 0
        if k + 1 < folds:
            overlapped += reads[k + 1]  # next fold prefetches now
        if k > 0:
            overlapped += writes[k - 1]  # previous fold drains now
        total += max(cycles[k], overlapped / bandwidth)
    # The final fold's outputs still have to leave the chip.
    total += writes[-1] / bandwidth
    return StalledRuntime(
        bandwidth=bandwidth,
        compute_cycles=sum(cycles),
        total_cycles=total,
        cold_start_cycles=cold_start,
    )


def sweet_spot_bandwidth(traffic: DramTraffic, tolerance: float = 0.05) -> float:
    """Smallest bandwidth whose stalled runtime is within ``tolerance``
    of stall-free — the provisioning answer to Fig. 11's demand curves.

    Found by bisection on the monotone ``bandwidth_limited_runtime``.
    """
    if not 0 < tolerance < 1:
        raise ValueError(f"tolerance must be in (0, 1), got {tolerance}")
    target = (1.0 + tolerance) * sum(traffic.fold_cycles)

    low, high = 1e-6, 1.0
    while bandwidth_limited_runtime(traffic, high).total_cycles > target:
        high *= 2
        if high > 1e12:  # pragma: no cover - defensive
            break
    for _ in range(64):
        mid = (low + high) / 2
        if bandwidth_limited_runtime(traffic, mid).total_cycles > target:
            low = mid
        else:
            high = mid
    return high
