"""Single-array (scale-up) cycle-accurate simulator.

This is the SCALE-Sim front door: given a :class:`HardwareConfig` with a
1x1 partition grid, :meth:`Simulator.run_layer` executes one layer
through the dataflow engine and memory system and returns a
:class:`LayerResult`; :meth:`Simulator.run_network` maps a whole
topology, layer by layer, in file order (Sec. II-E semantics).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.config.hardware import HardwareConfig
from repro.dataflow.base import AddressLayout, DataflowEngine
from repro.dataflow.factory import engine_for, engine_for_gemm
from repro.engine.results import LayerResult, RunResult
from repro.errors import SimulationError
from repro.memory.bandwidth import compute_dram_traffic
from repro.memory.buffers import BufferSet
from repro.obs import metrics, trace
from repro.perf.cache import cache, simulation_key
from repro.store import runtime as store_runtime
from repro.topology.layer import Layer
from repro.topology.network import Network


class Simulator:
    """Cycle-accurate simulator for one monolithic systolic array.

    ``loop_order`` picks the fold iteration order ("row", SCALE-Sim's
    default, or "col"); it affects DRAM traffic only, never runtime.
    """

    def __init__(self, config: HardwareConfig, loop_order: str = "row"):
        if not config.is_monolithic:
            raise SimulationError(
                "Simulator models a single array; use ScaleOutSimulator for "
                f"partitioned configs (got {config.partition_rows}x{config.partition_cols})"
            )
        if loop_order not in ("row", "col"):
            raise SimulationError(f"loop_order must be 'row' or 'col', got {loop_order!r}")
        self.config = config
        self.loop_order = loop_order
        self.buffers = BufferSet.from_config(config)
        # Dead PE rows/columns are bypassed: the machine computes as a
        # smaller R' x C' array (healthy configs: R' == R, C' == C).
        self.array_rows = config.effective_array_rows
        self.array_cols = config.effective_array_cols

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run_layer(self, layer: Layer) -> LayerResult:
        """Simulate one layer and return its measured result."""
        with trace.span(
            "engine.run_layer",
            layer=layer.name,
            dataflow=self.config.dataflow.value,
            array=f"{self.array_rows}x{self.array_cols}",
        ):
            return self._measure(self.engine(layer), layer.name)

    def run_gemm(self, m: int, k: int, n: int, name: str = "gemm") -> LayerResult:
        """Simulate a bare (M x K) @ (K x N) GEMM."""
        with trace.span("engine.run_gemm", name=name, m=m, k=k, n=n):
            engine = engine_for_gemm(
                m, k, n, self.config.dataflow, self.array_rows, self.array_cols
            )
            return self._measure(engine, name)

    def run_network(self, network: Network) -> RunResult:
        """Simulate every layer of ``network`` serially, in file order."""
        with trace.span("engine.run_network", network=network.name):
            results = [self.run_layer(layer) for layer in network]
        return RunResult(
            network_name=network.name,
            config_description=self.config.describe(),
            layers=results,
        )

    def address_layout(self, layer: Layer) -> AddressLayout:
        """The trace address layout for ``layer`` under this config."""
        return AddressLayout(
            m=layer.gemm_m,
            k=layer.gemm_k,
            n=layer.gemm_n,
            ifmap_offset=self.config.ifmap_offset,
            filter_offset=self.config.filter_offset,
            ofmap_offset=self.config.ofmap_offset,
        )

    def engine(self, layer: Layer) -> DataflowEngine:
        """Expose the dataflow engine for trace-level inspection."""
        return engine_for(
            layer,
            self.config.dataflow,
            self.array_rows,
            self.array_cols,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _measure(self, engine: DataflowEngine, layer_name: str) -> LayerResult:
        key = simulation_key(
            self.config,
            self.array_rows,
            self.array_cols,
            engine.m,
            engine.k,
            engine.n,
            self.loop_order,
        )
        hit = cache.get(key)
        if hit is not None:
            result, _traffic = hit
            self._record_metrics(result)
            return replace(result, layer_name=layer_name)
        stored = store_runtime.probe(key)
        if stored is not None:
            result, _traffic = stored
            cache.put(key, stored)
            self._record_metrics(result)
            return replace(result, layer_name=layer_name)
        traffic = compute_dram_traffic(
            engine, self.buffers, self.config.word_bytes, loop_order=self.loop_order
        )
        sram = engine.layer_counts()
        total_cycles = engine.total_cycles()
        result = LayerResult(
            layer_name=layer_name,
            dataflow=self.config.dataflow,
            array_rows=self.array_rows,
            array_cols=self.array_cols,
            partition_rows=1,
            partition_cols=1,
            total_cycles=total_cycles,
            macs=engine.layer_macs,
            mapping_utilization=engine.mapping_utilization(),
            compute_utilization=engine.compute_utilization(total_cycles),
            sram=sram,
            dram_read_bytes=traffic.read_bytes,
            dram_write_bytes=traffic.write_bytes,
            cold_start_bytes=traffic.cold_start_bytes,
            avg_read_bw=traffic.bandwidth.avg_read_bw,
            avg_write_bw=traffic.bandwidth.avg_write_bw,
            peak_read_bw=traffic.bandwidth.peak_read_bw,
            peak_write_bw=traffic.bandwidth.peak_write_bw,
            word_bytes=self.config.word_bytes,
            row_folds=engine.plan.row_folds,
            col_folds=engine.plan.col_folds,
        )
        self._record_metrics(result)
        cache.put(key, (result, traffic))
        store_runtime.record(key, (replace(result, layer_name=""), traffic))
        return result

    @staticmethod
    def _record_metrics(result: LayerResult) -> None:
        """Identical sim.* accounting for fresh and cache-hit results."""
        if metrics.enabled:
            metrics.counter("sim.layers").add()
            metrics.counter("sim.cycles").add(result.total_cycles)
            metrics.counter("sim.macs").add(result.macs)
            metrics.counter("sim.dram_read_bytes").add(result.dram_read_bytes)
            metrics.counter("sim.dram_write_bytes").add(result.dram_write_bytes)
