"""SRAM-side bandwidth reports (SCALE-Sim's avg/max bandwidth outputs).

The original tool parses its SRAM traces into two report files: the
average and the maximum per-cycle bandwidth of each operand SRAM over
each layer.  This module computes the same numbers directly from the
engines' exact per-cycle demand curves — cheaper than materializing the
trace, bit-identical to counting its rows (the consistency tests
guarantee demand == trace).

Units are elements/cycle; multiply by the word size for bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataflow.base import DataflowEngine


@dataclass(frozen=True)
class SramBandwidthReport:
    """Per-layer SRAM bandwidth summary, in elements per cycle."""

    avg_ifmap_read: float
    max_ifmap_read: int
    avg_filter_read: float
    max_filter_read: int
    avg_ofmap_write: float
    max_ofmap_write: int
    total_cycles: int

    @property
    def avg_total_read(self) -> float:
        return self.avg_ifmap_read + self.avg_filter_read

    @property
    def max_total_read(self) -> int:
        """Upper bound: the per-stream maxima need not coincide."""
        return self.max_ifmap_read + self.max_filter_read


def sram_bandwidth_report(engine: DataflowEngine) -> SramBandwidthReport:
    """Compute the SRAM bandwidth report for one layer on one array."""
    total_cycles = 0
    ifmap_sum = filter_sum = ofmap_sum = 0
    ifmap_max = filter_max = ofmap_max = 0
    for fold in engine.plan.folds():
        demand = engine.fold_demand(fold)
        total_cycles += demand.cycles
        ifmap_sum += int(demand.ifmap_reads.sum())
        filter_sum += int(demand.filter_reads.sum())
        ofmap_sum += int(demand.ofmap_writes.sum())
        ifmap_max = max(ifmap_max, int(demand.ifmap_reads.max()))
        filter_max = max(filter_max, int(demand.filter_reads.max()))
        ofmap_max = max(ofmap_max, int(demand.ofmap_writes.max()))
    return SramBandwidthReport(
        avg_ifmap_read=ifmap_sum / total_cycles,
        max_ifmap_read=ifmap_max,
        avg_filter_read=filter_sum / total_cycles,
        max_filter_read=filter_max,
        avg_ofmap_write=ofmap_sum / total_cycles,
        max_ofmap_write=ofmap_max,
        total_cycles=total_cycles,
    )


def demand_histogram(engine: DataflowEngine, stream: str = "ifmap") -> np.ndarray:
    """Histogram of per-cycle demand levels for one operand stream.

    Entry ``d`` counts the cycles in which exactly ``d`` elements were
    read (written) from the stream — the distribution behind the
    avg/max summary.  ``stream`` is one of ``"ifmap"``, ``"filter"``,
    ``"ofmap"``.
    """
    if stream not in ("ifmap", "filter", "ofmap"):
        raise ValueError(f"stream must be ifmap/filter/ofmap, got {stream!r}")
    counts: dict = {}
    peak = 0
    for fold in engine.plan.folds():
        demand = engine.fold_demand(fold)
        series = {
            "ifmap": demand.ifmap_reads,
            "filter": demand.filter_reads,
            "ofmap": demand.ofmap_writes,
        }[stream]
        values, freqs = np.unique(series, return_counts=True)
        for value, freq in zip(values.tolist(), freqs.tolist()):
            counts[value] = counts.get(value, 0) + freq
            peak = max(peak, value)
    histogram = np.zeros(peak + 1, dtype=np.int64)
    for value, freq in counts.items():
        histogram[value] = freq
    return histogram
