"""Cycle-accurate dataflow engines for OS / WS / IS systolic execution."""

from repro.dataflow.base import (
    AddressLayout,
    CycleTrace,
    DataflowEngine,
    FoldDemand,
    OperandSlice,
    SramCounts,
    fold_cycles,
)
from repro.dataflow.output_stationary import OutputStationaryEngine
from repro.dataflow.output_stationary_dataplane import OutputStationaryDataPlaneEngine
from repro.dataflow.weight_stationary import WeightStationaryEngine
from repro.dataflow.input_stationary import InputStationaryEngine
from repro.dataflow.factory import engine_for, engine_for_gemm

__all__ = [
    "AddressLayout",
    "CycleTrace",
    "DataflowEngine",
    "FoldDemand",
    "OperandSlice",
    "SramCounts",
    "fold_cycles",
    "OutputStationaryEngine",
    "OutputStationaryDataPlaneEngine",
    "WeightStationaryEngine",
    "InputStationaryEngine",
    "engine_for",
    "engine_for_gemm",
]
