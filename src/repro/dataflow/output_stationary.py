"""Output-stationary (OS) dataflow engine.

Under OS (Fig. 3a / Fig. 6a), each PE owns one output pixel: rows of the
array carry convolution windows (``S_R = N_ofmap``), columns carry
filters (``S_C = N_filter``), and every PE accumulates for
``T = W_conv`` cycles.  Operands stream in skewed from the left (IFMAP)
and top (filters); results drain out of the bottom edge for ``r`` cycles
after the last PE finishes.

Per-fold phase structure (fold-local cycles, ``tau = 2r + c + T - 2``):

* IFMAP row ``i`` is read once per cycle during ``[i, i + T - 1]``.
* Filter column ``j`` is read once per cycle during ``[j, j + T - 1]``.
* Output row ``r-1-s`` (bottom first) is written, one element per
  mapped column, at cycle ``tau - r + s`` for ``s in [0, r)``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.config.hardware import Dataflow
from repro.dataflow.base import (
    AddressLayout,
    CycleTrace,
    DataflowEngine,
    FoldDemand,
    OperandSlice,
    SramCounts,
    _stream_window_counts,
)
from repro.mapping.folds import Fold


class OutputStationaryEngine(DataflowEngine):
    """Cycle-accurate OS execution of one GEMM on one array."""

    dataflow = Dataflow.OUTPUT_STATIONARY
    ifmap_slice_axis = "row"
    filter_slice_axis = "col"

    def fold_counts(self, fold: Fold) -> SramCounts:
        t = self.mapping.t
        return SramCounts(
            ifmap_reads=fold.rows * t,
            filter_reads=fold.cols * t,
            ofmap_writes=fold.rows * fold.cols,
        )

    def fold_demand(self, fold: Fold) -> FoldDemand:
        cycles = self.fold_cycles(fold)
        t = self.mapping.t
        ifmap = _stream_window_counts(cycles, fold.rows, t, start=0)
        filt = _stream_window_counts(cycles, fold.cols, t, start=0)
        writes = np.zeros(cycles, dtype=np.int64)
        writes[cycles - fold.rows :] = fold.cols
        return FoldDemand(cycles=cycles, ifmap_reads=ifmap, filter_reads=filt, ofmap_writes=writes)

    def fold_trace(self, fold: Fold, layout: AddressLayout) -> Iterator[CycleTrace]:
        cycles = self.fold_cycles(fold)
        t = self.mapping.t
        r, c = fold.rows, fold.cols
        ro, co = fold.row_offset, fold.col_offset
        drain_start = cycles - r
        for cycle in range(cycles):
            ifmap_addrs = tuple(
                layout.ifmap_addr(ro + i, cycle - i)
                for i in range(max(0, cycle - t + 1), min(r - 1, cycle) + 1)
            )
            filter_addrs = tuple(
                layout.filter_addr(cycle - j, co + j)
                for j in range(max(0, cycle - t + 1), min(c - 1, cycle) + 1)
            )
            ofmap_addrs = ()
            if cycle >= drain_start:
                out_row = ro + (r - 1 - (cycle - drain_start))
                ofmap_addrs = tuple(layout.ofmap_addr(out_row, co + j) for j in range(c))
            yield CycleTrace(cycle, ifmap_addrs, filter_addrs, ofmap_addrs)

    def ifmap_slice(self, fold: Fold) -> OperandSlice:
        """OS reads T IFMAP elements per mapped row: one row-block per row-fold."""
        return OperandSlice(
            stream="ifmap",
            slice_id=("row", fold.row_index),
            elements=fold.rows * self.mapping.t,
        )

    def filter_slice(self, fold: Fold) -> OperandSlice:
        """OS reads T filter elements per mapped column: one col-block per col-fold."""
        return OperandSlice(
            stream="filter",
            slice_id=("col", fold.col_index),
            elements=fold.cols * self.mapping.t,
        )

    def fold_ofmap_elements(self, fold: Fold) -> int:
        return fold.rows * fold.cols
