"""Construct the right engine for a dataflow."""

from __future__ import annotations

from typing import Dict, Type

from repro.config.hardware import Dataflow
from repro.dataflow.base import DataflowEngine
from repro.dataflow.input_stationary import InputStationaryEngine
from repro.dataflow.output_stationary import OutputStationaryEngine
from repro.dataflow.output_stationary_dataplane import OutputStationaryDataPlaneEngine
from repro.dataflow.weight_stationary import WeightStationaryEngine
from repro.errors import MappingError
from repro.obs import metrics
from repro.topology.layer import Layer

_ENGINES: Dict[Dataflow, Type[DataflowEngine]] = {
    Dataflow.OUTPUT_STATIONARY: OutputStationaryEngine,
    Dataflow.WEIGHT_STATIONARY: WeightStationaryEngine,
    Dataflow.INPUT_STATIONARY: InputStationaryEngine,
}


def _engine_class(dataflow: Dataflow, output_dataplane: bool) -> Type[DataflowEngine]:
    if output_dataplane:
        if dataflow is not Dataflow.OUTPUT_STATIONARY:
            raise MappingError(
                "the dedicated output data plane is an OS variant "
                f"(got {dataflow!r})"
            )
        return OutputStationaryDataPlaneEngine
    try:
        return _ENGINES[dataflow]
    except KeyError:
        raise MappingError(f"no engine registered for dataflow {dataflow!r}") from None


def engine_for(
    layer: Layer,
    dataflow: Dataflow,
    array_rows: int,
    array_cols: int,
    output_dataplane: bool = False,
) -> DataflowEngine:
    """Build the cycle-accurate engine for ``layer`` under ``dataflow``.

    ``output_dataplane=True`` selects the Sec. II-A OS variant whose
    results leave over a dedicated plane instead of draining through
    the PE mesh.
    """
    engine_cls = _engine_class(dataflow, output_dataplane)
    engine = engine_cls(layer.gemm_m, layer.gemm_k, layer.gemm_n, array_rows, array_cols)
    _count_engine(engine)
    return engine


def engine_for_gemm(
    m: int,
    k: int,
    n: int,
    dataflow: Dataflow,
    array_rows: int,
    array_cols: int,
    output_dataplane: bool = False,
) -> DataflowEngine:
    """Build the cycle-accurate engine for a bare GEMM under ``dataflow``."""
    engine_cls = _engine_class(dataflow, output_dataplane)
    engine = engine_cls(m, k, n, array_rows, array_cols)
    _count_engine(engine)
    return engine


def _count_engine(engine: DataflowEngine) -> None:
    if metrics.enabled:
        metrics.counter("dataflow.engines_built").add()
        metrics.counter("dataflow.folds_planned").add(
            engine.plan.row_folds * engine.plan.col_folds
        )
