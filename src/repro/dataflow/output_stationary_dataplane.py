"""Output-stationary with a dedicated output data plane (paper Sec. II-A).

The baseline OS array drains results through the PE mesh itself: "No
computation takes place in the array during this movement."  The paper
notes the alternative — "a separate data plane to move generated
output is also possible, however, it is costly to implement."  This
engine models that alternative so the cost/benefit can be quantified:

* each PE's finished output leaves immediately on the dedicated plane,
  the cycle its T-th accumulation completes — PE (i, j) finishes at
  fold-local cycle ``i + j + T - 1``;
* the r-cycle drain phase disappears entirely, so one fold takes
  ``tau_F = r + c + T - 2`` cycles (vs ``2r + c + T - 2``);
* operand feeding, SRAM read traffic and DRAM behaviour are identical
  to the baseline OS engine.

Writes form anti-diagonal wavefronts: at cycle ``t``, every PE with
``i + j == t - (T - 1)`` emits one output.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.dataflow.base import AddressLayout, CycleTrace, FoldDemand
from repro.dataflow.output_stationary import OutputStationaryEngine
from repro.mapping.folds import Fold


def _antidiagonal_counts(length: int, rows: int, cols: int, start: int) -> np.ndarray:
    """Per-cycle size of the anti-diagonal ``i + j == t - start``.

    For an ``rows x cols`` grid, diagonal ``d`` holds
    ``max(0, min(d, rows-1, cols-1, rows+cols-2-d) + 1)`` cells — the
    familiar ramp-plateau-ramp profile.
    """
    t = np.arange(length, dtype=np.int64)
    d = t - start
    upper = np.minimum(np.minimum(d, rows - 1), np.minimum(cols - 1, rows + cols - 2 - d))
    return np.where(d < 0, 0, np.maximum(0, upper + 1)).astype(np.int64)


class OutputStationaryDataPlaneEngine(OutputStationaryEngine):
    """OS with immediate output extraction over a dedicated plane."""

    def fold_cycles(self, fold: Fold) -> int:
        """No drain phase: r + c + T - 2."""
        return fold.rows + fold.cols + self.mapping.t - 2

    def fold_demand(self, fold: Fold) -> FoldDemand:
        cycles = self.fold_cycles(fold)
        t = self.mapping.t
        base = super().fold_demand(fold)
        # Reads are the first `cycles` entries of the baseline profile
        # (the baseline's extra cycles are drain-only: zero reads).
        ifmap = base.ifmap_reads[:cycles]
        filt = base.filter_reads[:cycles]
        writes = _antidiagonal_counts(cycles, fold.rows, fold.cols, start=t - 1)
        return FoldDemand(cycles=cycles, ifmap_reads=ifmap, filter_reads=filt, ofmap_writes=writes)

    def fold_trace(self, fold: Fold, layout: AddressLayout) -> Iterator[CycleTrace]:
        cycles = self.fold_cycles(fold)
        t = self.mapping.t
        r, c = fold.rows, fold.cols
        ro, co = fold.row_offset, fold.col_offset
        for cycle in range(cycles):
            ifmap_addrs = tuple(
                layout.ifmap_addr(ro + i, cycle - i)
                for i in range(max(0, cycle - t + 1), min(r - 1, cycle) + 1)
            )
            filter_addrs = tuple(
                layout.filter_addr(cycle - j, co + j)
                for j in range(max(0, cycle - t + 1), min(c - 1, cycle) + 1)
            )
            d = cycle - (t - 1)
            ofmap_addrs = tuple(
                layout.ofmap_addr(ro + i, co + (d - i))
                for i in range(max(0, d - c + 1), min(r - 1, d) + 1)
            ) if d >= 0 else ()
            yield CycleTrace(cycle, ifmap_addrs, filter_addrs, ofmap_addrs)
