"""Shared machinery for the three dataflow engines.

Every engine models the execution of one mapped GEMM
(``(M x K) @ (K x N)``) on an ``R x C`` systolic array as a sequence of
*folds* (Sec. III-B2).  For each fold it can produce three views of the
same execution, in increasing levels of detail:

1. ``fold_counts``  — exact totals: SRAM reads per operand and writes.
2. ``fold_demand``  — exact per-cycle read/write counts (numpy arrays).
3. ``fold_trace``   — exact per-cycle SRAM *addresses* (generator).

All three views are mutually consistent by construction and the test
suite asserts it: summing a demand array reproduces the counts, and
counting trace addresses reproduces the demand array.

The fold latency is the paper's Eq. 3 for all three dataflows::

    tau_F = 2r + c + T - 2

where ``r``/``c`` are the rows/columns mapped in this fold and ``T`` is
the temporal dimension from Table III.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Hashable, Iterator, List, Tuple

import numpy as np

from repro.config.hardware import Dataflow
from repro.errors import MappingError
from repro.mapping.dims import OperandMapping, map_gemm
from repro.mapping.folds import Fold, FoldPlan, plan_folds
from repro.utils.validation import check_positive_int


def fold_cycles(rows: int, cols: int, temporal: int) -> int:
    """Eq. 3: cycles for one fold with ``rows x cols`` mapped PEs.

    ``2r`` covers feeding the row dimension and draining the results,
    ``c`` the column skew, and ``T`` the streaming depth; the ``-2``
    removes the fencepost overlaps.  Identical for OS, WS and IS
    (Sec. III-B1 shows the derivation for each).
    """
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    check_positive_int(temporal, "temporal")
    return 2 * rows + cols + temporal - 2


@dataclass(frozen=True)
class SramCounts:
    """Exact SRAM traffic of one fold (or a whole layer), in elements."""

    ifmap_reads: int = 0
    filter_reads: int = 0
    ofmap_writes: int = 0

    def __add__(self, other: "SramCounts") -> "SramCounts":
        return SramCounts(
            ifmap_reads=self.ifmap_reads + other.ifmap_reads,
            filter_reads=self.filter_reads + other.filter_reads,
            ofmap_writes=self.ofmap_writes + other.ofmap_writes,
        )

    def __mul__(self, count: int) -> "SramCounts":
        if not isinstance(count, int) or isinstance(count, bool):
            return NotImplemented
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return SramCounts(
            ifmap_reads=self.ifmap_reads * count,
            filter_reads=self.filter_reads * count,
            ofmap_writes=self.ofmap_writes * count,
        )

    __rmul__ = __mul__

    @property
    def total_reads(self) -> int:
        return self.ifmap_reads + self.filter_reads

    @property
    def total(self) -> int:
        return self.total_reads + self.ofmap_writes


@dataclass(frozen=True)
class OperandSlice:
    """The chunk of one operand matrix a fold needs resident in SRAM.

    ``slice_id`` identifies the chunk: consecutive folds with the same
    id reuse the resident data and need no new DRAM fetch (the
    double-buffer reuse model in :mod:`repro.memory.reuse` keys on it).
    """

    stream: str  # "ifmap" | "filter"
    slice_id: Hashable
    elements: int

    def __post_init__(self) -> None:
        if self.stream not in ("ifmap", "filter"):
            raise MappingError(f"unknown operand stream {self.stream!r}")
        check_positive_int(self.elements, "elements")


@dataclass(frozen=True)
class FoldDemand:
    """Per-cycle SRAM demand of one fold.

    Arrays all have length ``cycles``; entry ``t`` is the number of
    elements read (written) from that stream at fold-local cycle ``t``.
    """

    cycles: int
    ifmap_reads: np.ndarray
    filter_reads: np.ndarray
    ofmap_writes: np.ndarray

    def totals(self) -> SramCounts:
        return SramCounts(
            ifmap_reads=int(self.ifmap_reads.sum()),
            filter_reads=int(self.filter_reads.sum()),
            ofmap_writes=int(self.ofmap_writes.sum()),
        )


@dataclass(frozen=True)
class CycleTrace:
    """All SRAM events of one cycle: the trace-file row format.

    Addresses are absolute (operand offset already applied).
    """

    cycle: int
    ifmap_addrs: Tuple[int, ...] = ()
    filter_addrs: Tuple[int, ...] = ()
    ofmap_addrs: Tuple[int, ...] = ()


@dataclass(frozen=True)
class AddressLayout:
    """Linear addressing of the three operand matrices.

    The lowered input operand is an ``M x K`` matrix (one row per
    convolution window), the filter operand a ``K x N`` matrix (one
    column per filter) and the output an ``M x N`` matrix; all three are
    stored row-major starting at their Table I offsets.
    """

    m: int
    k: int
    n: int
    ifmap_offset: int = 0
    filter_offset: int = 10_000_000
    ofmap_offset: int = 20_000_000

    def ifmap_addr(self, window: int, element: int) -> int:
        """Address of IFMAP-matrix entry (window row, window element)."""
        return self.ifmap_offset + window * self.k + element

    def filter_addr(self, element: int, filt: int) -> int:
        """Address of filter-matrix entry (window element, filter column)."""
        return self.filter_offset + element * self.n + filt

    def ofmap_addr(self, window: int, filt: int) -> int:
        """Address of OFMAP-matrix entry (window row, filter column)."""
        return self.ofmap_offset + window * self.n + filt


def _stream_window_counts(length: int, active_rows: int, depth: int, start: int) -> np.ndarray:
    """Per-cycle count of active skewed streams.

    Stream ``i`` (``0 <= i < active_rows``) is active during cycles
    ``[start + i, start + i + depth - 1]``.  Returns an array of length
    ``length`` whose entry ``t`` counts the active streams at cycle ``t``.
    This one shape covers every feed/drain phase of all three dataflows.
    """
    t = np.arange(length, dtype=np.int64)
    s = t - start
    lo = np.maximum(0, s - depth + 1)
    hi = np.minimum(s, active_rows - 1)
    return np.maximum(0, hi - lo + 1).astype(np.int64)


class DataflowEngine(abc.ABC):
    """Cycle-accurate model of one GEMM on one array under one dataflow."""

    #: Which dataflow this engine implements; set by subclasses.
    dataflow: Dataflow

    #: Whether per-fold timing and SRAM counts depend only on the fold's
    #: ``(rows, cols)`` shape.  True for all Eq. 3 dataflows, which lets
    #: layer aggregates be computed from the <=4 fold shape classes
    #: instead of iterating all F_R x F_C folds.  Subclasses whose
    #: ``fold_cycles``/``fold_counts`` depend on fold *position* (not
    #: just shape) must set this False to restore the exhaustive walk.
    shape_uniform_folds: bool = True

    #: Which fold-grid axis each operand slice is keyed on: "row" (one
    #: slice per row fold), "col" (one per column fold), or "tile" (one
    #: per fold).  ``None`` means unknown — the closed-form DRAM-traffic
    #: path only engages when both are declared.
    ifmap_slice_axis: str | None = None
    filter_slice_axis: str | None = None

    def __init__(self, m: int, k: int, n: int, array_rows: int, array_cols: int):
        self.m = check_positive_int(m, "m")
        self.k = check_positive_int(k, "k")
        self.n = check_positive_int(n, "n")
        self.array_rows = check_positive_int(array_rows, "array_rows")
        self.array_cols = check_positive_int(array_cols, "array_cols")
        self.mapping: OperandMapping = map_gemm(m, k, n, self.dataflow)
        self.plan: FoldPlan = plan_folds(self.mapping, array_rows, array_cols)

    # ------------------------------------------------------------------
    # Shared timing
    # ------------------------------------------------------------------
    def fold_cycles(self, fold: Fold) -> int:
        """Eq. 3 latency of one fold."""
        return fold_cycles(fold.rows, fold.cols, self.mapping.t)

    def total_cycles(self) -> int:
        """Layer latency: folds execute back to back (SCALE-Sim v1).

        When fold latency depends only on fold shape (Eq. 3 does), the
        sum collapses to the <=4 shape classes weighted by multiplicity.
        """
        if self.shape_uniform_folds:
            return sum(
                count * self.fold_cycles(fold)
                for fold, count in self.plan.shape_classes()
            )
        return sum(self.fold_cycles(fold) for fold in self.plan.folds())

    # ------------------------------------------------------------------
    # Per-fold views, implemented by each dataflow
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def fold_counts(self, fold: Fold) -> SramCounts:
        """Exact SRAM element totals for one fold."""

    @abc.abstractmethod
    def fold_demand(self, fold: Fold) -> FoldDemand:
        """Exact per-cycle SRAM demand for one fold."""

    @abc.abstractmethod
    def fold_trace(self, fold: Fold, layout: AddressLayout) -> Iterator[CycleTrace]:
        """Exact per-cycle SRAM addresses for one fold."""

    @abc.abstractmethod
    def ifmap_slice(self, fold: Fold) -> OperandSlice:
        """The IFMAP-operand chunk this fold needs resident."""

    @abc.abstractmethod
    def filter_slice(self, fold: Fold) -> OperandSlice:
        """The filter-operand chunk this fold needs resident."""

    def fold_ofmap_elements(self, fold: Fold) -> int:
        """Distinct output elements produced by one fold."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Layer-level aggregation
    # ------------------------------------------------------------------
    def layer_counts(self) -> SramCounts:
        """Exact SRAM element totals across the whole layer.

        Aggregated from fold shape classes when counts are a pure
        function of fold shape (all Eq. 3 dataflows).
        """
        if self.shape_uniform_folds:
            total = SramCounts()
            for fold, count in self.plan.shape_classes():
                total = total + self.fold_counts(fold) * count
            return total
        total = SramCounts()
        for fold in self.plan.folds():
            total = total + self.fold_counts(fold)
        return total

    def layer_trace(self, layout: AddressLayout) -> Iterator[CycleTrace]:
        """Full layer trace with globally increasing cycle numbers."""
        base = 0
        for fold in self.plan.folds():
            for row in self.fold_trace(fold, layout):
                yield CycleTrace(
                    cycle=base + row.cycle,
                    ifmap_addrs=row.ifmap_addrs,
                    filter_addrs=row.filter_addrs,
                    ofmap_addrs=row.ofmap_addrs,
                )
            base += self.fold_cycles(fold)

    def mapping_utilization(self) -> float:
        """Average fraction of PEs carrying valid mappings, over folds.

        This is the "array utilization" of Fig. 9(b-c): edge folds map
        fewer than R x C PEs, diluting utilization.
        """
        total_pes = self.array_rows * self.array_cols
        # mapped PEs summed over all folds telescopes to S_R x S_C.
        mapped = sum(
            count * fold.mapped_pes for fold, count in self.plan.shape_classes()
        )
        return mapped / (total_pes * self.plan.num_folds)

    def compute_utilization(self, total_cycles: int | None = None) -> float:
        """Useful MACs / (PEs x total cycles): includes fill/drain overhead.

        Pass ``total_cycles`` when the caller already computed it, to
        avoid a redundant fold-plan aggregation.
        """
        if total_cycles is None:
            total_cycles = self.total_cycles()
        total = total_cycles * self.array_rows * self.array_cols
        return (self.m * self.k * self.n) / total

    @property
    def layer_macs(self) -> int:
        return self.m * self.k * self.n
