"""Input-stationary (IS) dataflow engine.

IS (Fig. 3c / Fig. 5c) mirrors WS with the operand roles swapped: IFMAP
elements are pre-filled — column ``j`` holds window ``j``, row ``i``
holds window element ``i`` (``S_R = W_conv``, ``S_C = N_ofmap``) — and
filters stream through for ``T = N_filter`` cycles, partial sums
reducing down each column.

Per-fold phase structure (fold-local cycles, ``tau = 2r + c + T - 2``):

* Prefill, cycles ``[0, r)``: one IFMAP-matrix element-row per cycle
  (``c`` reads each), bottom row first.
* Stream: filter row ``i`` is read once per cycle during
  ``[r + i, r + i + T - 1]``.
* Drain: column ``j`` emits the filter-``f`` output at cycle
  ``2r - 1 + j + f``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.config.hardware import Dataflow
from repro.dataflow.base import (
    AddressLayout,
    CycleTrace,
    DataflowEngine,
    FoldDemand,
    OperandSlice,
    SramCounts,
    _stream_window_counts,
)
from repro.mapping.folds import Fold


class InputStationaryEngine(DataflowEngine):
    """Cycle-accurate IS execution of one GEMM on one array."""

    dataflow = Dataflow.INPUT_STATIONARY
    ifmap_slice_axis = "tile"
    filter_slice_axis = "row"

    def fold_counts(self, fold: Fold) -> SramCounts:
        t = self.mapping.t
        return SramCounts(
            ifmap_reads=fold.rows * fold.cols,
            filter_reads=fold.rows * t,
            ofmap_writes=fold.cols * t,
        )

    def fold_demand(self, fold: Fold) -> FoldDemand:
        cycles = self.fold_cycles(fold)
        t = self.mapping.t
        r, c = fold.rows, fold.cols
        ifmap = np.zeros(cycles, dtype=np.int64)
        ifmap[:r] = c
        filt = _stream_window_counts(cycles, r, t, start=r)
        writes = _stream_window_counts(cycles, c, t, start=2 * r - 1)
        return FoldDemand(cycles=cycles, ifmap_reads=ifmap, filter_reads=filt, ofmap_writes=writes)

    def fold_trace(self, fold: Fold, layout: AddressLayout) -> Iterator[CycleTrace]:
        cycles = self.fold_cycles(fold)
        t = self.mapping.t
        r, c = fold.rows, fold.cols
        ro, co = fold.row_offset, fold.col_offset
        for cycle in range(cycles):
            ifmap_addrs = ()
            if cycle < r:
                elem = ro + (r - 1 - cycle)  # bottom row of stationary inputs first
                ifmap_addrs = tuple(layout.ifmap_addr(co + j, elem) for j in range(c))
            s = cycle - r
            filter_addrs = tuple(
                layout.filter_addr(ro + i, s - i)
                for i in range(max(0, s - t + 1), min(r - 1, s) + 1)
            ) if s >= 0 else ()
            d = cycle - (2 * r - 1)
            ofmap_addrs = tuple(
                layout.ofmap_addr(co + j, d - j)
                for j in range(max(0, d - t + 1), min(c - 1, d) + 1)
            ) if d >= 0 else ()
            yield CycleTrace(cycle, ifmap_addrs, filter_addrs, ofmap_addrs)

    def ifmap_slice(self, fold: Fold) -> OperandSlice:
        """IS pre-fills an r x c tile of the IFMAP matrix: unique per fold."""
        return OperandSlice(
            stream="ifmap",
            slice_id=("tile", fold.row_index, fold.col_index),
            elements=fold.rows * fold.cols,
        )

    def filter_slice(self, fold: Fold) -> OperandSlice:
        """IS streams filter rows [ro, ro+r) of every filter: keyed by row-fold."""
        return OperandSlice(
            stream="filter",
            slice_id=("row", fold.row_index),
            elements=fold.rows * self.mapping.t,
        )

    def fold_ofmap_elements(self, fold: Fold) -> int:
        return fold.cols * self.mapping.t
