"""Weight-stationary (WS) dataflow engine.

Under WS (Fig. 3b / Fig. 6b), filter elements are pre-filled into the
array — column ``j`` holds filter ``j``, row ``i`` holds window element
``i`` (``S_R = W_conv``, ``S_C = N_filter``) — and IFMAP windows stream
through for ``T = N_ofmap`` cycles, with partial sums reduced down each
column.

Per-fold phase structure (fold-local cycles, ``tau = 2r + c + T - 2``):

* Prefill, cycles ``[0, r)``: one filter-matrix row per cycle (``c``
  reads each), bottom row first so weights land in place.
* Stream: IFMAP row ``i`` is read once per cycle during
  ``[r + i, r + i + T - 1]`` (skewed so sums align down the column).
* Drain: column ``j`` emits the window-``w`` output at cycle
  ``2r - 1 + j + w`` — one write per active column per cycle.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.config.hardware import Dataflow
from repro.dataflow.base import (
    AddressLayout,
    CycleTrace,
    DataflowEngine,
    FoldDemand,
    OperandSlice,
    SramCounts,
    _stream_window_counts,
)
from repro.mapping.folds import Fold


class WeightStationaryEngine(DataflowEngine):
    """Cycle-accurate WS execution of one GEMM on one array."""

    dataflow = Dataflow.WEIGHT_STATIONARY
    ifmap_slice_axis = "row"
    filter_slice_axis = "tile"

    def fold_counts(self, fold: Fold) -> SramCounts:
        t = self.mapping.t
        return SramCounts(
            ifmap_reads=fold.rows * t,
            filter_reads=fold.rows * fold.cols,
            ofmap_writes=fold.cols * t,
        )

    def fold_demand(self, fold: Fold) -> FoldDemand:
        cycles = self.fold_cycles(fold)
        t = self.mapping.t
        r, c = fold.rows, fold.cols
        filt = np.zeros(cycles, dtype=np.int64)
        filt[:r] = c
        ifmap = _stream_window_counts(cycles, r, t, start=r)
        writes = _stream_window_counts(cycles, c, t, start=2 * r - 1)
        return FoldDemand(cycles=cycles, ifmap_reads=ifmap, filter_reads=filt, ofmap_writes=writes)

    def fold_trace(self, fold: Fold, layout: AddressLayout) -> Iterator[CycleTrace]:
        cycles = self.fold_cycles(fold)
        t = self.mapping.t
        r, c = fold.rows, fold.cols
        ro, co = fold.row_offset, fold.col_offset
        for cycle in range(cycles):
            filter_addrs = ()
            if cycle < r:
                elem = ro + (r - 1 - cycle)  # bottom row of weights enters first
                filter_addrs = tuple(layout.filter_addr(elem, co + j) for j in range(c))
            s = cycle - r
            ifmap_addrs = tuple(
                layout.ifmap_addr(s - i, ro + i)
                for i in range(max(0, s - t + 1), min(r - 1, s) + 1)
            ) if s >= 0 else ()
            d = cycle - (2 * r - 1)
            ofmap_addrs = tuple(
                layout.ofmap_addr(d - j, co + j)
                for j in range(max(0, d - t + 1), min(c - 1, d) + 1)
            ) if d >= 0 else ()
            yield CycleTrace(cycle, ifmap_addrs, filter_addrs, ofmap_addrs)

    def ifmap_slice(self, fold: Fold) -> OperandSlice:
        """WS streams window elements [ro, ro+r) of every window: keyed by row-fold."""
        return OperandSlice(
            stream="ifmap",
            slice_id=("row", fold.row_index),
            elements=fold.rows * self.mapping.t,
        )

    def filter_slice(self, fold: Fold) -> OperandSlice:
        """WS pre-fills an r x c tile of the filter matrix: unique per fold."""
        return OperandSlice(
            stream="filter",
            slice_id=("tile", fold.row_index, fold.col_index),
            elements=fold.rows * fold.cols,
        )

    def fold_ofmap_elements(self, fold: Fold) -> int:
        """Each active column emits T partial outputs (full sums only when
        the whole K dimension fits one row-fold; partial sums otherwise —
        SCALE-Sim writes them back either way)."""
        return fold.cols * self.mapping.t
