"""2D mesh geometry: hop counts for unicast and multicast delivery.

The partition grid is a ``grid_rows x grid_cols`` mesh with the memory
port attached at the top-left corner, XY (row-first) routing, and one
extra hop for the port link itself.  Multicast along a grid row/column
is modelled as a path tree: the payload travels to the first partition
and is forwarded neighbour to neighbour, so each byte crosses each tree
link exactly once.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Tuple

from repro.errors import ReproError, ResilienceError
from repro.utils.validation import check_positive_int

Coord = Tuple[int, int]
Link = Tuple[Coord, Coord]


@dataclass(frozen=True)
class NocConfig:
    """Mesh parameters.

    ``link_bytes_per_cycle`` is the capacity of one mesh link (and of
    the memory port); ``energy_per_byte_hop`` is the transport energy
    for moving one byte across one link, in the same arbitrary units as
    :class:`repro.energy.EnergyParams` (default: 1/20 of a MAC, a
    common first-order figure for short on-chip hops).
    """

    link_bytes_per_cycle: float = 32.0
    energy_per_byte_hop: float = 0.05

    def __post_init__(self) -> None:
        if self.link_bytes_per_cycle <= 0:
            raise ReproError("link_bytes_per_cycle must be positive")
        if self.energy_per_byte_hop < 0:
            raise ReproError("energy_per_byte_hop must be non-negative")


class MeshNoc:
    """Hop arithmetic for one partition mesh."""

    def __init__(self, grid_rows: int, grid_cols: int):
        self.grid_rows = check_positive_int(grid_rows, "grid_rows")
        self.grid_cols = check_positive_int(grid_cols, "grid_cols")

    def _check(self, row: int, col: int) -> None:
        if not (0 <= row < self.grid_rows and 0 <= col < self.grid_cols):
            raise ReproError(
                f"partition ({row}, {col}) outside {self.grid_rows}x{self.grid_cols} grid"
            )

    def unicast_hops(self, row: int, col: int) -> int:
        """Links one byte crosses from the port to partition (row, col)."""
        self._check(row, col)
        return 1 + row + col  # port link + XY route

    def row_multicast_hops(self, row: int) -> int:
        """Links crossed delivering one byte to *every* partition in a
        grid row: down to the row, then across all its columns."""
        self._check(row, 0)
        return 1 + row + (self.grid_cols - 1)

    def col_multicast_hops(self, col: int) -> int:
        """Links crossed delivering one byte to every partition in a
        grid column: across to the column, then down all its rows."""
        self._check(0, col)
        return 1 + col + (self.grid_rows - 1)

    def mean_unicast_hops(self) -> float:
        """Average port-to-partition distance over the whole grid."""
        total = sum(
            self.unicast_hops(row, col)
            for row in range(self.grid_rows)
            for col in range(self.grid_cols)
        )
        return total / (self.grid_rows * self.grid_cols)

    @property
    def diameter(self) -> int:
        """Longest port-to-partition route."""
        return 1 + (self.grid_rows - 1) + (self.grid_cols - 1)


class DegradedMeshNoc(MeshNoc):
    """Mesh with down links: shortest surviving routes instead of XY.

    Dead *partitions* keep their routers alive (a partition whose
    compute is fused off can still forward flits), so only the links in
    ``dead_links`` are removed from the route graph.  Routes are
    breadth-first shortest paths from the port corner ``(0, 0)``; a
    partition cut off from the port entirely raises
    :class:`~repro.errors.ResilienceError` — the grid cannot be fed.
    """

    def __init__(self, grid_rows: int, grid_cols: int, dead_links: Iterable[Link] = ()):
        super().__init__(grid_rows, grid_cols)
        self.dead_links: FrozenSet[Link] = frozenset(
            tuple(sorted((tuple(a), tuple(b)))) for a, b in dead_links
        )
        for a, b in self.dead_links:
            self._check(*a)
            self._check(*b)
        self._distance = self._bfs_distances()

    def _bfs_distances(self) -> Dict[Coord, int]:
        dead = self.dead_links
        distance: Dict[Coord, int] = {(0, 0): 0}
        frontier = deque([(0, 0)])
        while frontier:
            node = frontier.popleft()
            row, col = node
            for nxt in ((row - 1, col), (row + 1, col), (row, col - 1), (row, col + 1)):
                if not (0 <= nxt[0] < self.grid_rows and 0 <= nxt[1] < self.grid_cols):
                    continue
                if nxt in distance:
                    continue
                if tuple(sorted((node, nxt))) in dead:
                    continue
                distance[nxt] = distance[node] + 1
                frontier.append(nxt)
        return distance

    def reachable(self, row: int, col: int) -> bool:
        """Whether any surviving route connects the port to (row, col)."""
        self._check(row, col)
        return (row, col) in self._distance

    def unicast_hops(self, row: int, col: int) -> int:
        """Port link + shortest surviving route to partition (row, col)."""
        self._check(row, col)
        if (row, col) not in self._distance:
            raise ResilienceError(
                f"partition ({row}, {col}) unreachable from the memory port: "
                f"dead links {sorted(self.dead_links)} disconnect it"
            )
        return 1 + self._distance[(row, col)]

    def row_multicast_hops(self, row: int) -> int:
        """Multicast trees are not rebuilt around faults; deliver
        row-wise payloads as per-partition unicasts instead."""
        self._check(row, 0)
        return sum(self.unicast_hops(row, col) for col in range(self.grid_cols))

    def col_multicast_hops(self, col: int) -> int:
        """Column-wise payloads degrade to per-partition unicasts too."""
        self._check(0, col)
        return sum(self.unicast_hops(row, col) for row in range(self.grid_rows))
