"""Distribution/collection cost of one layer on a partition mesh.

Per-partition DRAM traffic comes from the closed-form model
(:func:`repro.analytical.traffic.estimate_traffic`) applied to each
partition's tile — the same quantities the scale-out simulator measures,
at O(grid) cost.  Delivery uses the cheapest pattern the partitioning
allows under the layer's dataflow:

* the operand sliced along grid *rows* (identical for every partition
  in a grid row) is row-multicast;
* the operand sliced along grid *columns* is column-multicast;
* an operand tiled along both axes, and all outputs, are unicast.

For OS/WS the IFMAP-side operand is row-sliced and the filter-side
operand column-sliced (WS filter tiles are per-partition and unicast);
IS mirrors WS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analytical.traffic import estimate_traffic
from repro.config.hardware import Dataflow, HardwareConfig
from repro.errors import SimulationError
from repro.mapping.dims import OperandMapping, map_layer
from repro.memory.buffers import BufferSet
from repro.noc.mesh import Coord, DegradedMeshNoc, MeshNoc, NocConfig
from repro.resilience.faultmap import FaultMap
from repro.resilience.remap import remap_layer
from repro.topology.layer import Layer
from repro.utils.mathutils import split_evenly


@dataclass(frozen=True)
class NocCost:
    """Byte-hops and derived metrics for one layer on one grid."""

    ifmap_byte_hops: int
    filter_byte_hops: int
    ofmap_byte_hops: int
    port_bytes: int
    runtime_cycles: int

    @property
    def total_byte_hops(self) -> int:
        return self.ifmap_byte_hops + self.filter_byte_hops + self.ofmap_byte_hops

    @property
    def port_bandwidth(self) -> float:
        """Bytes/cycle the shared memory port must sustain."""
        return self.port_bytes / self.runtime_cycles

    def energy(self, config: NocConfig) -> float:
        """Transport energy, in EnergyParams units."""
        return self.total_byte_hops * config.energy_per_byte_hop

    def port_feasible(self, config: NocConfig) -> bool:
        """Whether one port link can feed the grid stall-free."""
        return self.port_bandwidth <= config.link_bytes_per_cycle


def layer_noc_cost(
    layer: Layer,
    config: HardwareConfig,
    fault_map: Optional[FaultMap] = None,
) -> NocCost:
    """Estimate NoC traffic for ``layer`` on ``config``'s partition grid.

    Monolithic configurations cost one hop per byte (the port link).
    ``fault_map`` (default: the config's own) reroutes around dead
    links and re-maps dead partitions' traffic to the survivors that
    adopted their tiles; degraded delivery is unicast per assignment.
    """
    if fault_map is None:
        fault_map = config.fault_map
    if fault_map is not None and (fault_map.affects_grid or fault_map.dead_links):
        return _degraded_noc_cost(layer, config, fault_map)
    mapping = map_layer(layer, config.dataflow)
    grid_rows, grid_cols = config.partition_rows, config.partition_cols
    mesh = MeshNoc(grid_rows, grid_cols)
    per_config = config.partition_config()
    buffers = BufferSet.from_config(per_config)
    word = config.word_bytes

    row_shares = split_evenly(mapping.sr, grid_rows)
    col_shares = split_evenly(mapping.sc, grid_cols)

    ifmap_hops = filter_hops = ofmap_hops = 0
    port_bytes = 0
    runtime = 0
    dataflow = config.dataflow
    any_work = False

    for p, tile_sr in enumerate(row_shares):
        for q, tile_sc in enumerate(col_shares):
            if tile_sr == 0 or tile_sc == 0:
                continue
            any_work = True
            tile = OperandMapping(
                sr=tile_sr, sc=tile_sc, t=mapping.t, dataflow=dataflow
            )
            est = estimate_traffic(
                tile, config.effective_array_rows, config.effective_array_cols,
                buffers, word,
            )
            runtime = max(runtime, est.total_cycles)
            port_bytes += est.total_bytes

            if dataflow is Dataflow.INPUT_STATIONARY:
                # IS: ifmap tiled both ways (unicast); filters row-sliced.
                ifmap_hops += est.ifmap_bytes * mesh.unicast_hops(p, q)
                if q == 0:
                    filter_hops += est.filter_bytes * mesh.row_multicast_hops(p)
            elif dataflow is Dataflow.WEIGHT_STATIONARY:
                # WS: ifmap row-sliced; filter tiles are per-partition.
                if q == 0:
                    ifmap_hops += est.ifmap_bytes * mesh.row_multicast_hops(p)
                filter_hops += est.filter_bytes * mesh.unicast_hops(p, q)
            else:
                # OS: ifmap row-sliced, filter column-sliced.
                if q == 0:
                    ifmap_hops += est.ifmap_bytes * mesh.row_multicast_hops(p)
                if p == 0:
                    filter_hops += est.filter_bytes * mesh.col_multicast_hops(q)
            ofmap_hops += est.ofmap_bytes * mesh.unicast_hops(p, q)

    if not any_work:
        raise SimulationError(
            f"layer {layer.name!r}: no partition received work on a "
            f"{grid_rows}x{grid_cols} grid"
        )

    return NocCost(
        ifmap_byte_hops=ifmap_hops,
        filter_byte_hops=filter_hops,
        ofmap_byte_hops=ofmap_hops,
        port_bytes=port_bytes,
        runtime_cycles=runtime,
    )


def _degraded_noc_cost(
    layer: Layer, config: HardwareConfig, fault_map: FaultMap
) -> NocCost:
    """NoC traffic on a degraded grid.

    Every tile of the remap plan is delivered to its *owner* (not its
    Eq.-5 home) as a unicast over the shortest surviving route —
    multicast trees assume the regular XY layout and are not rebuilt
    around faults.  The runtime against which port bandwidth is judged
    is the slowest survivor's serial total, mirroring the degraded
    engine.
    """
    mapping = map_layer(layer, config.dataflow)
    grid_rows, grid_cols = config.partition_rows, config.partition_cols
    mesh = DegradedMeshNoc(grid_rows, grid_cols, fault_map.dead_links)
    buffers = BufferSet.from_config(config.partition_config())
    word = config.word_bytes

    plan = remap_layer(
        mapping,
        grid_rows,
        grid_cols,
        config.effective_array_rows,
        config.effective_array_cols,
        fault_map,
    )

    ifmap_hops = filter_hops = ofmap_hops = 0
    port_bytes = 0
    owner_cycles: Dict[Coord, int] = {}
    for assignment in plan.assignments:
        tile = OperandMapping(
            sr=assignment.sr, sc=assignment.sc, t=mapping.t, dataflow=config.dataflow
        )
        est = estimate_traffic(
            tile, config.effective_array_rows, config.effective_array_cols,
            buffers, word,
        )
        owner = assignment.owner
        owner_cycles[owner] = owner_cycles.get(owner, 0) + est.total_cycles
        port_bytes += est.total_bytes
        hops = mesh.unicast_hops(*owner)
        ifmap_hops += est.ifmap_bytes * hops
        filter_hops += est.filter_bytes * hops
        ofmap_hops += est.ofmap_bytes * hops

    if not owner_cycles:
        raise SimulationError(
            f"layer {layer.name!r}: no partition received work on a "
            f"{grid_rows}x{grid_cols} grid"
        )

    return NocCost(
        ifmap_byte_hops=ifmap_hops,
        filter_byte_hops=filter_hops,
        ofmap_byte_hops=ofmap_hops,
        port_bytes=port_bytes,
        runtime_cycles=max(owner_cycles.values()),
    )
