"""On-chip network cost model for scale-out grids (Sec. IV-A).

The paper notes that partitioning trades the systolic array's short
internal wires for "longer traversals over an on-chip/off-chip network
(depending on the location of the partitions) to distribute data to the
different partitions and collecting outputs — which in turn can affect
overall energy."  This package quantifies that cost with a first-order
2D-mesh model: byte-hops for operand distribution and output
collection, a port-bandwidth feasibility check, and an energy term that
composes with :mod:`repro.energy`.
"""

from repro.noc.mesh import DegradedMeshNoc, MeshNoc, NocConfig
from repro.noc.cost import NocCost, layer_noc_cost

__all__ = ["DegradedMeshNoc", "MeshNoc", "NocConfig", "NocCost", "layer_noc_cost"]
