"""BERT-base encoder GEMMs — a modern language workload beyond Table IV.

One encoder layer at sequence length ``seq`` and hidden size 768:

* QKV projection: three (seq x 768) @ (768 x 768) GEMMs,
* attention scores: per-head (seq x 64) @ (64 x seq),
* attention context: per-head (seq x seq) @ (seq x 64),
* output projection: (seq x 768) @ (768 x 768),
* feed-forward up/down: (seq x 768) @ (768 x 3072) and back.

Per-head GEMMs are expressed batched over the 12 heads (Sec. II-E's
serialization of parallel cells).
"""

from __future__ import annotations

from typing import List

from repro.topology.layer import GemmLayer
from repro.topology.network import Network

HIDDEN = 768
HEADS = 12
HEAD_DIM = HIDDEN // HEADS
FFN = 3072


def bert_encoder(seq: int = 384) -> Network:
    """Build one BERT-base encoder layer's GEMMs at sequence length ``seq``."""
    if seq < 1:
        raise ValueError(f"seq must be positive, got {seq}")
    layers: List[GemmLayer] = [
        GemmLayer("QKV_Q", m=seq, k=HIDDEN, n=HIDDEN),
        GemmLayer("QKV_K", m=seq, k=HIDDEN, n=HIDDEN),
        GemmLayer("QKV_V", m=seq, k=HIDDEN, n=HIDDEN),
        GemmLayer("AttnScore", m=seq, k=HEAD_DIM, n=seq).with_batch(HEADS),
        GemmLayer("AttnContext", m=seq, k=seq, n=HEAD_DIM).with_batch(HEADS),
        GemmLayer("AttnOut", m=seq, k=HIDDEN, n=HIDDEN),
        GemmLayer("FFN_Up", m=seq, k=HIDDEN, n=FFN),
        GemmLayer("FFN_Down", m=seq, k=FFN, n=HIDDEN),
    ]
    return Network(f"bert-base-s{seq}", layers)
