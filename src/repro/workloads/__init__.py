"""Built-in workloads used by the paper's evaluation."""

from repro.workloads.resnet50 import resnet50, fig10_resnet_layers, PAPER_CBA3_LAYER
from repro.workloads.language import (
    language_models,
    language_layer,
    TABLE_IV_DIMS,
    PAPER_TF0_LAYER,
)
from repro.workloads.alexnet import alexnet
from repro.workloads.bert import bert_encoder
from repro.workloads.mobilenet import mobilenet_v1
from repro.workloads.vgg16 import vgg16
from repro.workloads.registry import available_workloads, get_workload

__all__ = [
    "resnet50",
    "fig10_resnet_layers",
    "PAPER_CBA3_LAYER",
    "language_models",
    "language_layer",
    "TABLE_IV_DIMS",
    "PAPER_TF0_LAYER",
    "alexnet",
    "bert_encoder",
    "mobilenet_v1",
    "vgg16",
    "available_workloads",
    "get_workload",
]
