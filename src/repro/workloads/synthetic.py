"""Synthetic workload generators for sweeps and stress tests.

Real networks cover only part of the (M, K, N) space; these generators
fill the rest deterministically (everything is seeded) so experiments
and property tests can sample shapes the built-in workloads never hit:

* :func:`random_gemm_suite` — log-uniform random GEMMs;
* :func:`aspect_family` — constant-MACs GEMMs sweeping M:N aspect ratio
  (the axis Fig. 9(b-c) probes on hardware, applied to workloads);
* :func:`reduction_family` — constant-MACs GEMMs sweeping the reduction
  depth K (deep-reduction layers stress the temporal dimension).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.topology.layer import GemmLayer
from repro.topology.network import Network
from repro.utils.validation import check_positive_int


def random_gemm_suite(
    count: int = 10,
    seed: int = 0,
    min_dim: int = 1,
    max_dim: int = 4096,
) -> Network:
    """``count`` GEMMs with log-uniform independent dimensions."""
    check_positive_int(count, "count")
    check_positive_int(min_dim, "min_dim")
    if max_dim < min_dim:
        raise ValueError(f"max_dim {max_dim} < min_dim {min_dim}")
    rng = np.random.default_rng(seed)
    lo, hi = math.log(min_dim), math.log(max_dim + 1)
    layers: List[GemmLayer] = []
    for index in range(count):
        m, k, n = (int(math.exp(rng.uniform(lo, hi))) for _ in range(3))
        layers.append(GemmLayer(f"rand{index}", m=max(m, 1), k=max(k, 1), n=max(n, 1)))
    return Network(f"random-suite-{seed}", layers)


def aspect_family(
    total_macs: int = 2**24,
    k: int = 64,
    steps: int = 7,
) -> Network:
    """Constant-work GEMMs sweeping M:N from tall to wide.

    Every layer performs the same MAC count (up to rounding): the
    spatial extent ``M * N = total_macs / k`` is held fixed while the
    aspect ratio M:N sweeps powers of four around square.
    """
    check_positive_int(total_macs, "total_macs")
    check_positive_int(k, "k")
    check_positive_int(steps, "steps")
    spatial = max(1, total_macs // k)
    side = int(math.sqrt(spatial))
    layers: List[GemmLayer] = []
    half = steps // 2
    for index in range(steps):
        shift = index - half
        m = max(1, side << shift) if shift >= 0 else max(1, side >> -shift)
        n = max(1, spatial // m)
        layers.append(GemmLayer(f"aspect_{m}x{n}", m=m, k=k, n=n))
    return Network(f"aspect-family-k{k}", layers)


def reduction_family(
    total_macs: int = 2**24,
    spatial: int = 2**10,
    steps: int = 6,
) -> Network:
    """Constant-work GEMMs sweeping reduction depth K by powers of four.

    ``M = N = sqrt(spatial)`` stays fixed; K grows, trading temporal
    depth against per-element reuse.
    """
    check_positive_int(total_macs, "total_macs")
    check_positive_int(spatial, "spatial")
    check_positive_int(steps, "steps")
    side = max(1, int(math.sqrt(spatial)))
    base_k = max(1, total_macs // (side * side))
    layers: List[GemmLayer] = []
    for index in range(steps):
        k = max(1, base_k >> (2 * index))
        layers.append(GemmLayer(f"reduce_k{k}", m=side, k=k, n=side))
    return Network("reduction-family", layers)
