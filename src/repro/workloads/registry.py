"""Name-based lookup of the built-in workloads (used by the CLI)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.topology.network import Network
from repro.workloads.alexnet import alexnet
from repro.workloads.bert import bert_encoder
from repro.workloads.language import language_models
from repro.workloads.mobilenet import mobilenet_v1
from repro.workloads.resnet50 import resnet50
from repro.workloads.vgg16 import vgg16

_REGISTRY: Dict[str, Callable[[], Network]] = {
    "resnet50": resnet50,
    "language-models": language_models,
    "alexnet": alexnet,
    "vgg16": vgg16,
    "mobilenet-v1": mobilenet_v1,
    "bert-base": bert_encoder,
}


def available_workloads() -> List[str]:
    """Names accepted by :func:`get_workload`, sorted."""
    return sorted(_REGISTRY)


def get_workload(name: str) -> Network:
    """Build a built-in workload by name."""
    try:
        builder = _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {available_workloads()}"
        ) from None
    return builder()
