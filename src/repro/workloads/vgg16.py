"""VGG-16 (Simonyan & Zisserman, 2015) — a conv-heavy classic workload.

Thirteen 3x3 convolutions in five blocks plus three FC layers.  IFMAP
sizes include the 1-pixel padding of the original network, matching the
convention of :mod:`repro.workloads.resnet50`.
"""

from __future__ import annotations

from typing import List

from repro.topology.layer import ConvLayer
from repro.topology.network import Network

# (block, convs_in_block, ifmap_side, in_channels, out_channels)
_BLOCKS = (
    (1, 2, 224, 3, 64),
    (2, 2, 112, 64, 128),
    (3, 3, 56, 128, 256),
    (4, 3, 28, 256, 512),
    (5, 3, 14, 512, 512),
)


def vgg16() -> Network:
    """Build the 13-conv + 3-FC VGG-16 workload."""
    layers: List[ConvLayer] = []
    for block, convs, side, in_ch, out_ch in _BLOCKS:
        channels = in_ch
        for index in range(1, convs + 1):
            layers.append(
                ConvLayer(
                    name=f"Conv{block}_{index}",
                    ifmap_h=side + 2,
                    ifmap_w=side + 2,
                    filter_h=3,
                    filter_w=3,
                    channels=channels,
                    num_filters=out_ch,
                    stride=1,
                )
            )
            channels = out_ch
    layers.append(ConvLayer.fully_connected("FC6", inputs=7 * 7 * 512, outputs=4096))
    layers.append(ConvLayer.fully_connected("FC7", inputs=4096, outputs=4096))
    layers.append(ConvLayer.fully_connected("FC8", inputs=4096, outputs=1000))
    return Network("vgg16", layers)
