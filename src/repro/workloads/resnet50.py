"""ResNet-50 topology (He et al., CVPR 2016) as a SCALE-Sim workload.

The paper's CNN experiments use "the convolution layers in Resnet50"
(Sec. IV).  Layer names follow the paper's convention: ``CB<stage>a_*``
for the convolution (projection) block that opens each stage —
including its ``_sc`` shortcut projection — and ``IB<stage><block>_*``
for identity blocks.  ``FC1000`` is the classifier expressed as a
matrix-vector product (filter size = IFMAP size), per Sec. II-E.

IFMAP sizes include the padding of the original network so OFMAP
dimensions match the real model (e.g. 3x3 convs see a 58x58 input and
produce 56x56), since the Table II layer format has no padding field.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.topology.layer import ConvLayer
from repro.topology.network import Network

#: The layer Fig. 11 sweeps ("CBa_3 layer in Resnet-50").
PAPER_CBA3_LAYER = "CB2a_3"

# Per-stage geometry: (stage, ifmap, in_ch, mid_ch, out_ch, identity_blocks)
_STAGES = (
    (2, 56, 64, 64, 256, 2),
    (3, 28, 256, 128, 512, 3),
    (4, 14, 512, 256, 1024, 5),
    (5, 7, 1024, 512, 2048, 2),
)
_BLOCK_LETTERS = "bcdefg"


def _conv(name: str, ifmap: int, kernel: int, channels: int, filters: int, stride: int = 1) -> ConvLayer:
    """A square conv with padding folded into the IFMAP size."""
    pad = kernel - 1 if kernel > 1 else 0
    return ConvLayer(
        name=name,
        ifmap_h=ifmap + pad,
        ifmap_w=ifmap + pad,
        filter_h=kernel,
        filter_w=kernel,
        channels=channels,
        num_filters=filters,
        stride=stride,
    )


def _bottleneck(
    prefix: str, ifmap: int, in_ch: int, mid_ch: int, out_ch: int, stride: int
) -> List[ConvLayer]:
    """The three convs of one bottleneck block (1x1 -> 3x3 -> 1x1)."""
    out_map = (ifmap - 1) // stride + 1
    return [
        _conv(f"{prefix}_1", ifmap, 1, in_ch, mid_ch, stride),
        _conv(f"{prefix}_2", out_map, 3, mid_ch, mid_ch, 1),
        _conv(f"{prefix}_3", out_map, 1, mid_ch, out_ch, 1),
    ]


def _resnet50_layers() -> List[ConvLayer]:
    layers: List[ConvLayer] = [
        # Stem: 7x7/2 on the padded 230x230 input -> 112x112x64.
        ConvLayer(
            name="Conv1",
            ifmap_h=230,
            ifmap_w=230,
            filter_h=7,
            filter_w=7,
            channels=3,
            num_filters=64,
            stride=2,
        )
    ]
    for stage, ifmap, in_ch, mid_ch, out_ch, identity_blocks in _STAGES:
        stride = 1 if stage == 2 else 2
        stage_in_map = ifmap * stride  # feature map entering the stage
        layers.extend(_bottleneck(f"CB{stage}a", stage_in_map, in_ch, mid_ch, out_ch, stride))
        layers.append(_conv(f"CB{stage}a_sc", stage_in_map, 1, in_ch, out_ch, stride))
        for letter in _BLOCK_LETTERS[:identity_blocks]:
            layers.extend(_bottleneck(f"IB{stage}{letter}", ifmap, out_ch, mid_ch, out_ch, 1))
    layers.append(ConvLayer.fully_connected("FC1000", inputs=2048, outputs=1000))
    return layers


def resnet50() -> Network:
    """Build the full ResNet-50 workload (53 conv layers + FC1000)."""
    return Network("resnet50", _resnet50_layers())


def fig10_resnet_layers(count: int = 5) -> Network:
    """The layers Fig. 10(a) plots: the first and last ``count``
    convolution/FC layers of ResNet-50."""
    net = resnet50()
    names = net.layer_names()
    picked: Sequence[str] = list(names[:count]) + list(names[-count:])
    return net.subset(picked, name="resnet50-fig10")
