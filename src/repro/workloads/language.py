"""Language-model GEMM workloads — paper Table IV, verbatim.

Each row gives the operand matrix dimensions already mapped to
``(S_R, T, S_C)`` under the output-stationary convention, i.e. a
``(S_R x T) @ (T x S_C)`` matrix multiplication:

========  ======  ======  ======
Name       S_R      T      S_C
========  ======  ======  ======
GNMT0       128    4096    2048
GNMT1       320    4096    3072
GNMT2      1632    1024   36548
GNMT3      2048      32    4096
DB0        1024   50000      16
DB1          35    2560    4096
TF0       31999      84    1024
TF1          84    4096    1024
NCF0       2048     128       1
NCF1        256    2048     256
========  ======  ======  ======

GNMT = Google neural machine translation, DB = DeepSpeech2,
TF = Transformer, NCF = neural collaborative filtering.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.topology.layer import GemmLayer
from repro.topology.network import Network

#: Table IV, as (S_R, T, S_C) triples keyed by layer name.
TABLE_IV_DIMS: Dict[str, Tuple[int, int, int]] = {
    "GNMT0": (128, 4096, 2048),
    "GNMT1": (320, 4096, 3072),
    "GNMT2": (1632, 1024, 36548),
    "GNMT3": (2048, 32, 4096),
    "DB0": (1024, 50000, 16),
    "DB1": (35, 2560, 4096),
    "TF0": (31999, 84, 1024),
    "TF1": (84, 4096, 1024),
    "NCF0": (2048, 128, 1),
    "NCF1": (256, 2048, 256),
}

#: The layer Figs. 9 and 11 sweep ("TF0 layer of the Transformer model").
PAPER_TF0_LAYER = "TF0"


def language_layer(name: str) -> GemmLayer:
    """Build one Table IV layer by name."""
    try:
        sr, t, sc = TABLE_IV_DIMS[name]
    except KeyError:
        raise KeyError(
            f"unknown language-model layer {name!r}; "
            f"Table IV layers are {sorted(TABLE_IV_DIMS)}"
        ) from None
    # Under the OS convention of Table IV, S_R = M, T = K, S_C = N.
    return GemmLayer(name=name, m=sr, k=t, n=sc)


def language_models() -> Network:
    """All ten Table IV layers as one workload set."""
    return Network("language-models", [language_layer(name) for name in TABLE_IV_DIMS])
