"""MobileNetV1 (Howard et al., 2017) — depthwise-separable convolutions.

Each separable block is a depthwise 3x3 (one filter per channel,
modelled as ``channels=1`` convolutions batched over the channel count,
which is how SCALE-Sim's Table II schema expresses them) followed by a
pointwise 1x1.  Depthwise layers have almost no filter reuse, which
makes this network a stress test for scale-out studies: its layers map
poorly onto wide arrays.
"""

from __future__ import annotations

from typing import List

from repro.topology.layer import ConvLayer
from repro.topology.network import Network

# (stage index, ifmap side, in_channels, out_channels, stride of the dw conv)
_BLOCKS = (
    (2, 112, 32, 64, 1),
    (3, 112, 64, 128, 2),
    (4, 56, 128, 128, 1),
    (5, 56, 128, 256, 2),
    (6, 28, 256, 256, 1),
    (7, 28, 256, 512, 2),
    (8, 14, 512, 512, 1),
    (9, 14, 512, 512, 1),
    (10, 14, 512, 512, 1),
    (11, 14, 512, 512, 1),
    (12, 14, 512, 512, 1),
    (13, 14, 512, 1024, 2),
    (14, 7, 1024, 1024, 1),
)


def _depthwise(name: str, side: int, channels: int, stride: int) -> ConvLayer:
    """A depthwise 3x3: per-channel filtering, expressed channel-batched."""
    return ConvLayer(
        name=name,
        ifmap_h=side + 2,
        ifmap_w=side + 2,
        filter_h=3,
        filter_w=3,
        channels=1,
        num_filters=1,
        stride=stride,
        batch=channels,
    )


def mobilenet_v1() -> Network:
    """Build the MobileNetV1 workload (stem + 13 separable blocks)."""
    layers: List[ConvLayer] = [
        ConvLayer(
            name="Conv1",
            ifmap_h=226,
            ifmap_w=226,
            filter_h=3,
            filter_w=3,
            channels=3,
            num_filters=32,
            stride=2,
        )
    ]
    for stage, side, in_ch, out_ch, stride in _BLOCKS:
        out_side = (side - 1) // stride + 1
        layers.append(_depthwise(f"DW{stage}", side, in_ch, stride))
        layers.append(
            ConvLayer(
                name=f"PW{stage}",
                ifmap_h=out_side,
                ifmap_w=out_side,
                filter_h=1,
                filter_w=1,
                channels=in_ch,
                num_filters=out_ch,
                stride=1,
            )
        )
    layers.append(ConvLayer.fully_connected("FC", inputs=1024, outputs=1000))
    return Network("mobilenet-v1", layers)
