"""AlexNet (Krizhevsky et al., 2012) — a small classic CNN workload.

Not part of the paper's evaluation, but a standard SCALE-Sim example
topology; used by the examples and as a fast integration-test network.
IFMAP sizes include padding, as in :mod:`repro.workloads.resnet50`.
"""

from __future__ import annotations

from repro.topology.layer import ConvLayer
from repro.topology.network import Network


def alexnet() -> Network:
    """Build the 5-conv + 3-FC AlexNet workload."""
    layers = [
        ConvLayer("Conv1", ifmap_h=227, ifmap_w=227, filter_h=11, filter_w=11,
                  channels=3, num_filters=96, stride=4),
        ConvLayer("Conv2", ifmap_h=31, ifmap_w=31, filter_h=5, filter_w=5,
                  channels=96, num_filters=256, stride=1),
        ConvLayer("Conv3", ifmap_h=15, ifmap_w=15, filter_h=3, filter_w=3,
                  channels=256, num_filters=384, stride=1),
        ConvLayer("Conv4", ifmap_h=15, ifmap_w=15, filter_h=3, filter_w=3,
                  channels=384, num_filters=384, stride=1),
        ConvLayer("Conv5", ifmap_h=15, ifmap_w=15, filter_h=3, filter_w=3,
                  channels=384, num_filters=256, stride=1),
        ConvLayer.fully_connected("FC6", inputs=9216, outputs=4096),
        ConvLayer.fully_connected("FC7", inputs=4096, outputs=4096),
        ConvLayer.fully_connected("FC8", inputs=4096, outputs=1000),
    ]
    return Network("alexnet", layers)
