"""Replayable regression bundles and the on-disk corpus.

Every violation the harness finds is shrunk and serialized as a
*regression bundle*: a small JSON document carrying the property name,
the minimal input (a case dict or a parser text), the generator seed
that produced it, and the expected/actual values at the time of
capture.  Bundles land in ``tests/regressions/`` where
``tests/test_regression_corpus.py`` replays every one of them on every
test run, forever — a fixed bug cannot come back silently, and a fresh
bundle fails CI until the underlying defect is fixed.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro._version import __version__
from repro.errors import VerificationError
from repro.obs.export import config_hash
from repro.utils.atomicio import atomic_write_text
from repro.verify.cases import CASE_SCHEMA, VerifyCase
from repro.verify.oracles import Violation

#: Default corpus location, relative to the repository root.
CORPUS_DIRNAME = "tests/regressions"

BUNDLE_SCHEMA = 1


def bundle_from_violation(violation: Violation, seed: int) -> Dict:
    """Serialize one (ideally already shrunk) violation for replay."""
    bundle: Dict = {
        "schema": BUNDLE_SCHEMA,
        "case_schema": CASE_SCHEMA,
        "prop": violation.prop,
        "seed": seed,
        "message": violation.message,
        "expected": _jsonable(violation.expected),
        "actual": _jsonable(violation.actual),
        "version": __version__,
        "captured_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    if violation.case is not None:
        bundle["case"] = violation.case.to_dict()
    if violation.text is not None:
        bundle["text"] = violation.text
    return bundle


def _jsonable(value: object) -> object:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def bundle_name(bundle: Dict) -> str:
    """Stable, content-addressed file name for one bundle."""
    digest = config_hash(
        {"prop": bundle["prop"], "case": bundle.get("case"), "text": bundle.get("text")}
    )
    return f"{bundle['prop']}-{digest[:12]}.json"


def write_bundle(corpus_dir: Union[str, Path], bundle: Dict) -> Path:
    """Atomically publish one bundle into the corpus; returns its path."""
    corpus = Path(corpus_dir)
    corpus.mkdir(parents=True, exist_ok=True)
    path = corpus / bundle_name(bundle)
    atomic_write_text(path, json.dumps(bundle, indent=2, sort_keys=True) + "\n")
    return path


def load_bundle(path: Union[str, Path]) -> Dict:
    """Read and sanity-check one regression bundle."""
    path = Path(path)
    try:
        bundle = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise VerificationError(f"unreadable regression bundle {path}: {exc}") from exc
    if not isinstance(bundle, dict) or "prop" not in bundle:
        raise VerificationError(f"regression bundle {path} has no 'prop' field")
    if "case" not in bundle and "text" not in bundle:
        raise VerificationError(
            f"regression bundle {path} carries neither a case nor a text input"
        )
    return bundle


def load_corpus(corpus_dir: Union[str, Path]) -> List[Path]:
    """All bundle files in the corpus, sorted for deterministic replay."""
    corpus = Path(corpus_dir)
    if not corpus.is_dir():
        return []
    return sorted(p for p in corpus.glob("*.json") if p.is_file())


def replay_bundle(bundle: Dict) -> List[Violation]:
    """Re-run a bundle's property on its stored input.

    Returns the violations found *now*: an empty list means the defect
    the bundle captured is fixed (the permanent regression test
    passes); a non-empty list means it is still present (or back).
    """
    from repro.verify.properties import PROPERTIES

    prop_name = bundle["prop"]
    prop = PROPERTIES.get(prop_name)
    if prop is None:
        raise VerificationError(
            f"regression bundle names unknown property {prop_name!r}; "
            f"available: {sorted(PROPERTIES)}"
        )
    if prop.kind.startswith("text"):
        text = bundle.get("text")
        if text is None:
            raise VerificationError(
                f"property {prop_name!r} replays a text input but the bundle has none"
            )
        return prop.check(text)
    case_data = bundle.get("case")
    if case_data is None:
        raise VerificationError(
            f"property {prop_name!r} replays a case but the bundle has none"
        )
    case = VerifyCase.from_dict(case_data)
    if not case.is_valid():
        raise VerificationError(
            f"regression bundle case is not a valid scenario: {case_data}"
        )
    return prop.check(case)


def replay_corpus(corpus_dir: Union[str, Path]) -> Dict[str, List[Violation]]:
    """Replay every bundle; maps bundle file name -> live violations."""
    outcomes: Dict[str, List[Violation]] = {}
    for path in load_corpus(corpus_dir):
        outcomes[path.name] = replay_bundle(load_bundle(path))
    return outcomes
