"""Blessed golden baselines for the paper's reproduced tables and figures.

``repro verify --bless`` freezes the current output of each experiment
in :mod:`repro.experiments.registry` into a self-verifying JSON record
under ``baselines/``: the rows, a content digest over them, the
package version, a UTC timestamp, and a human-supplied *reason* for
the blessing.  ``repro verify --check-golden`` regenerates every
blessed experiment and fails (exit 16) on any drift — a reproduced
number can only change by an explicit re-bless that records *why*,
so silent regressions in the paper's figures cannot merge.

Records are tamper-evident: the stored digest is recomputed from the
stored rows on every check, so a hand-edited baseline is rejected the
same way a drifted result is.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro._version import __version__
from repro.errors import VerificationError
from repro.experiments.registry import available_experiments, run_experiment
from repro.obs.export import config_hash
from repro.utils.atomicio import atomic_write_json

#: Default store location, relative to the repository root / cwd.
DEFAULT_BASELINE_DIR = "baselines"

BASELINE_SCHEMA = 1


def _rows_digest(experiment: str, rows: List[Dict]) -> str:
    return config_hash({"experiment": experiment, "rows": rows})


def baseline_path(baseline_dir: Union[str, Path], experiment: str) -> Path:
    return Path(baseline_dir) / f"{experiment}.json"


def bless(
    names: Optional[Sequence[str]] = None,
    reason: str = "",
    baseline_dir: Union[str, Path] = DEFAULT_BASELINE_DIR,
) -> List[Path]:
    """Freeze the current rows of the named experiments (all, by default).

    A non-empty ``reason`` is mandatory: the whole point of the bless
    workflow is that every accepted change to a reproduced number
    carries its justification in the record itself.
    """
    if not reason or not reason.strip():
        raise VerificationError(
            "refusing to bless without a reason; pass --reason explaining "
            "why the new numbers are correct"
        )
    chosen = list(names) if names else available_experiments()
    known = set(available_experiments())
    unknown = [name for name in chosen if name not in known]
    if unknown:
        raise VerificationError(
            f"unknown experiment(s) {unknown}; available: {sorted(known)}"
        )
    written: List[Path] = []
    for name in chosen:
        rows = run_experiment(name)
        record = {
            "schema": BASELINE_SCHEMA,
            "experiment": name,
            "version": __version__,
            "blessed_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "reason": reason.strip(),
            "digest": _rows_digest(name, rows),
            "rows": rows,
        }
        path = baseline_path(baseline_dir, name)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(path, record)
        written.append(path)
    return written


def load_baseline(path: Union[str, Path]) -> Dict:
    """Read one baseline record and verify its self-digest."""
    path = Path(path)
    try:
        record = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise VerificationError(f"unreadable baseline {path}: {exc}") from exc
    for key in ("experiment", "digest", "rows", "reason"):
        if key not in record:
            raise VerificationError(f"baseline {path} is missing {key!r}")
    recomputed = _rows_digest(record["experiment"], record["rows"])
    if recomputed != record["digest"]:
        raise VerificationError(
            f"baseline {path} is corrupt or hand-edited: stored digest "
            f"{record['digest']} != recomputed {recomputed}; re-bless it "
            f"with `repro verify --bless {record['experiment']} --reason ...`"
        )
    return record


def blessed_experiments(
    baseline_dir: Union[str, Path] = DEFAULT_BASELINE_DIR,
) -> List[str]:
    """Experiments with a blessed record on disk, sorted."""
    directory = Path(baseline_dir)
    if not directory.is_dir():
        return []
    return sorted(p.stem for p in directory.glob("*.json") if p.is_file())


def _values_match(expected: object, actual: object, rel_tol: float) -> bool:
    if isinstance(expected, bool) or isinstance(actual, bool):
        return expected == actual
    if isinstance(expected, (int, float)) and isinstance(actual, (int, float)):
        return math.isclose(expected, actual, rel_tol=rel_tol, abs_tol=0.0)
    return expected == actual


def _diff_rows(
    expected: List[Dict], actual: List[Dict], rel_tol: float
) -> Optional[str]:
    """First difference between blessed and regenerated rows, or None."""
    if len(expected) != len(actual):
        return f"row count changed: blessed {len(expected)}, now {len(actual)}"
    for index, (old, new) in enumerate(zip(expected, actual)):
        if set(old) != set(new):
            return (
                f"row {index} keys changed: blessed {sorted(old)}, "
                f"now {sorted(new)}"
            )
        for key in old:
            if not _values_match(old[key], new[key], rel_tol):
                return (
                    f"row {index} field {key!r} drifted: blessed "
                    f"{old[key]!r}, now {new[key]!r}"
                )
    return None


@dataclass
class BaselineReport:
    """Outcome of one ``--check-golden`` pass."""

    checked: List[str] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    drifted: Dict[str, str] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.missing and not self.drifted

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        text = f"[{status}] golden baselines: {len(self.checked)} checked"
        if self.missing:
            text += f"; missing: {', '.join(self.missing)}"
        for name, diff in self.drifted.items():
            text += f"; {name} drifted ({diff})"
        return text


def check_baselines(
    names: Optional[Sequence[str]] = None,
    baseline_dir: Union[str, Path] = DEFAULT_BASELINE_DIR,
    rel_tol: float = 0.0,
) -> BaselineReport:
    """Regenerate blessed experiments and diff them against the store.

    Without ``names``, every blessed record is checked; an empty store
    counts every known experiment as missing (nothing was ever
    blessed, so nothing is protected — that is itself a failure).
    """
    report = BaselineReport()
    chosen = list(names) if names else blessed_experiments(baseline_dir)
    if not chosen:
        report.missing = available_experiments()
        return report
    for name in chosen:
        path = baseline_path(baseline_dir, name)
        if not path.is_file():
            report.missing.append(name)
            continue
        record = load_baseline(path)
        rows = run_experiment(name)
        diff = _diff_rows(record["rows"], rows, rel_tol)
        report.checked.append(name)
        if diff is not None:
            report.drifted[name] = diff
    return report


def assert_baselines(
    names: Optional[Sequence[str]] = None,
    baseline_dir: Union[str, Path] = DEFAULT_BASELINE_DIR,
    rel_tol: float = 0.0,
) -> BaselineReport:
    """:func:`check_baselines`, raising on any missing or drifted record."""
    report = check_baselines(names, baseline_dir, rel_tol)
    if not report.passed:
        raise VerificationError(
            report.summary()
            + " — if the new numbers are intentional, re-bless with "
            "`repro verify --bless <experiment> --reason '<why>'`"
        )
    return report
