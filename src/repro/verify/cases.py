"""Randomized verification cases: one scenario the oracles can judge.

A :class:`VerifyCase` is a *complete, JSON-serializable* description of
one simulation scenario — GEMM shape, dataflow, array and partition
geometry, SRAM sizes, loop order and fault state.  Everything the
harness does (generation, property checking, shrinking, regression
bundles) operates on this one value type, so a failing case can be
round-tripped to disk and replayed forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.config.hardware import Dataflow, HardwareConfig
from repro.mapping.dims import OperandMapping, map_gemm
from repro.resilience.faultmap import FaultMap
from repro.topology.layer import GemmLayer

#: Serialization schema version for regression bundles.
CASE_SCHEMA = 1


@dataclass(frozen=True)
class VerifyCase:
    """One randomized scenario fed to the differential oracles."""

    m: int
    k: int
    n: int
    dataflow: str = "os"
    array_rows: int = 8
    array_cols: int = 8
    partition_rows: int = 1
    partition_cols: int = 1
    ifmap_sram_kb: int = 64
    filter_sram_kb: int = 64
    ofmap_sram_kb: int = 64
    word_bytes: int = 1
    loop_order: str = "row"
    dead_pe_rows: Tuple[int, ...] = field(default_factory=tuple)
    dead_pe_cols: Tuple[int, ...] = field(default_factory=tuple)
    dead_partitions: Tuple[Tuple[int, int], ...] = field(default_factory=tuple)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def is_monolithic(self) -> bool:
        return self.partition_rows * self.partition_cols == 1

    @property
    def is_degraded(self) -> bool:
        return bool(self.dead_pe_rows or self.dead_pe_cols or self.dead_partitions)

    def fault_map(self) -> Optional[FaultMap]:
        if not self.is_degraded:
            return None
        return FaultMap(
            dead_pe_rows=frozenset(self.dead_pe_rows),
            dead_pe_cols=frozenset(self.dead_pe_cols),
            dead_partitions=frozenset(tuple(c) for c in self.dead_partitions),
        )

    def config(self) -> HardwareConfig:
        """The full hardware configuration this case describes."""
        return HardwareConfig(
            array_rows=self.array_rows,
            array_cols=self.array_cols,
            ifmap_sram_kb=self.ifmap_sram_kb,
            filter_sram_kb=self.filter_sram_kb,
            ofmap_sram_kb=self.ofmap_sram_kb,
            dataflow=Dataflow.from_string(self.dataflow),
            partition_rows=self.partition_rows,
            partition_cols=self.partition_cols,
            word_bytes=self.word_bytes,
            fault_map=self.fault_map(),
        )

    def scaleup_config(self) -> HardwareConfig:
        """The monolithic (1x1 grid, grid faults dropped) counterpart."""
        fault = self.fault_map()
        return HardwareConfig(
            array_rows=self.array_rows,
            array_cols=self.array_cols,
            ifmap_sram_kb=self.ifmap_sram_kb,
            filter_sram_kb=self.filter_sram_kb,
            ofmap_sram_kb=self.ofmap_sram_kb,
            dataflow=Dataflow.from_string(self.dataflow),
            word_bytes=self.word_bytes,
            fault_map=fault.pe_only() if fault is not None else None,
        )

    def layer(self) -> GemmLayer:
        return GemmLayer(name=self.describe(), m=self.m, k=self.k, n=self.n)

    def mapping(self) -> OperandMapping:
        return map_gemm(self.m, self.k, self.n, Dataflow.from_string(self.dataflow))

    # ------------------------------------------------------------------
    # Validity
    # ------------------------------------------------------------------
    def is_valid(self) -> bool:
        """True when the case describes a buildable, runnable machine.

        The shrinker mutates fields blindly and uses this to discard
        candidates that stopped making sense (a dead PE row outside the
        array, every partition dead, ...).
        """
        ints = (
            self.m, self.k, self.n,
            self.array_rows, self.array_cols,
            self.partition_rows, self.partition_cols,
            self.ifmap_sram_kb, self.filter_sram_kb, self.ofmap_sram_kb,
            self.word_bytes,
        )
        if any(not isinstance(v, int) or v < 1 for v in ints):
            return False
        if self.dataflow not in ("os", "ws", "is") or self.loop_order not in ("row", "col"):
            return False
        if len(self.dead_pe_rows) >= self.array_rows:
            return False
        if len(self.dead_pe_cols) >= self.array_cols:
            return False
        if any(r < 0 or r >= self.array_rows for r in self.dead_pe_rows):
            return False
        if any(c < 0 or c >= self.array_cols for c in self.dead_pe_cols):
            return False
        grid = self.partition_rows * self.partition_cols
        if len(self.dead_partitions) >= grid:
            return False
        for p, q in self.dead_partitions:
            if not (0 <= p < self.partition_rows and 0 <= q < self.partition_cols):
                return False
        return True

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "m": self.m,
            "k": self.k,
            "n": self.n,
            "dataflow": self.dataflow,
            "array_rows": self.array_rows,
            "array_cols": self.array_cols,
            "partition_rows": self.partition_rows,
            "partition_cols": self.partition_cols,
            "ifmap_sram_kb": self.ifmap_sram_kb,
            "filter_sram_kb": self.filter_sram_kb,
            "ofmap_sram_kb": self.ofmap_sram_kb,
            "word_bytes": self.word_bytes,
            "loop_order": self.loop_order,
            "dead_pe_rows": list(self.dead_pe_rows),
            "dead_pe_cols": list(self.dead_pe_cols),
            "dead_partitions": [list(c) for c in self.dead_partitions],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "VerifyCase":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        unknown = sorted(set(data) - known)
        if unknown:
            from repro.errors import VerificationError

            raise VerificationError(
                f"regression case carries unknown field(s) {unknown}; "
                f"known: {sorted(known)}"
            )
        kwargs = dict(data)
        kwargs["dead_pe_rows"] = tuple(kwargs.get("dead_pe_rows", ()))
        kwargs["dead_pe_cols"] = tuple(kwargs.get("dead_pe_cols", ()))
        kwargs["dead_partitions"] = tuple(
            tuple(c) for c in kwargs.get("dead_partitions", ())
        )
        return cls(**kwargs)

    def replace(self, **changes) -> "VerifyCase":
        return replace(self, **changes)

    def describe(self) -> str:
        text = (
            f"{self.m}x{self.k}x{self.n}/{self.dataflow}"
            f"@{self.array_rows}x{self.array_cols}"
        )
        if not self.is_monolithic:
            text += f"g{self.partition_rows}x{self.partition_cols}"
        if self.is_degraded:
            text += "+faults"
        return text

    @property
    def cost(self) -> int:
        """Rough complexity estimate used to rank shrink candidates
        (smaller is simpler to debug).  Non-default knobs carry a small
        penalty so resetting them registers as progress even when the
        simulated work is unchanged."""
        knobs = (
            (self.word_bytes != 1)
            + (self.loop_order != "row")
            + (self.dataflow != "os")
            + (self.ifmap_sram_kb != 64)
            + (self.filter_sram_kb != 64)
            + (self.ofmap_sram_kb != 64)
        )
        return (
            self.m * self.k * self.n
            + self.array_rows * self.array_cols
            + 4 * self.partition_rows * self.partition_cols
            + len(self.dead_pe_rows) + len(self.dead_pe_cols)
            + len(self.dead_partitions)
            + knobs
        )
