"""Differential oracles: independent models judged against each other.

Four views of the same machine coexist in this library — the iterative
cycle-accurate engine, the closed-form analytical model (Eq. 1-6), the
fold-plan shape-class aggregation, and the PE-register-level golden
array — plus the degraded-mode remap prediction for faulty hardware.
Each oracle here runs two or more of those views on one
:class:`~repro.verify.cases.VerifyCase` and reports every documented
relationship that fails to hold as a :class:`Violation`.

The documented relationships (see ``docs/verification.md``):

* engine ``total_cycles`` equals the exact fold-by-fold analytical
  prediction, healthy or degraded (``repro.robust.invariants``);
* engine ``total_cycles`` <= Eq. 4/5/6 (which charge every fold the
  full-array latency), with equality iff the mapped dims divide;
* degraded runs stay within the closed-form degraded bound;
* shape-class aggregation reproduces the iterative fold walk exactly;
* the golden array agrees with the engine cycle for cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analytical.runtime import (
    degraded_scaleout_runtime,
    scaleout_runtime,
    scaleup_runtime,
)
from repro.engine.results import LayerResult
from repro.engine.scaleout import ScaleOutSimulator
from repro.engine.simulator import Simulator
from repro.errors import InvariantError, ReproError
from repro.golden.validate import validate_configuration
from repro.mapping.folds import plan_folds
from repro.robust.invariants import check_layer_result
from repro.verify.cases import VerifyCase


@dataclass(frozen=True)
class Violation:
    """One broken relationship, with everything needed to replay it."""

    prop: str
    message: str
    expected: object = None
    actual: object = None
    case: Optional[VerifyCase] = None
    text: Optional[str] = None
    context: Dict = field(default_factory=dict)

    def describe(self) -> str:
        detail = ""
        if self.expected is not None or self.actual is not None:
            detail = f" (expected {self.expected!r}, got {self.actual!r})"
        where = f" [{self.case.describe()}]" if self.case is not None else ""
        return f"{self.prop}: {self.message}{detail}{where}"


def simulate_case(case: VerifyCase) -> LayerResult:
    """Run the case's configured machine through the iterative engine."""
    config = case.config()
    if config.is_monolithic:
        return Simulator(config, loop_order=case.loop_order).run_layer(case.layer())
    return ScaleOutSimulator(config).run_layer(case.layer())


def oracle_models(case: VerifyCase) -> List[Violation]:
    """Iterative engine vs. exact analytical prediction vs. Eq. 4-6 bound.

    Covers healthy and degraded hardware: the exact prediction routes
    through the same deterministic remap plan the engine executes, and
    the closed-form degraded bound must stay an upper bound.
    """
    violations: List[Violation] = []
    config = case.config()
    layer = case.layer()
    try:
        result = simulate_case(case)
    except ReproError as exc:
        return [
            Violation(
                prop="models",
                message=f"engine refused a valid case: {exc}",
                actual=type(exc).__name__,
                case=case,
            )
        ]

    # Exact agreement (cycles, MACs, utilization bounds) via the
    # runtime invariant guards — rel_tol 0 by design.
    try:
        check_layer_result(result, layer, config, rel_tol=0.0)
    except InvariantError as exc:
        violations.append(
            Violation(prop="models", message=str(exc), case=case)
        )

    mapping = case.mapping()
    if config.is_monolithic:
        eff_rows = config.effective_array_rows
        eff_cols = config.effective_array_cols
        bound = scaleup_runtime(mapping, eff_rows, eff_cols)
        divides = mapping.sr % eff_rows == 0 and mapping.sc % eff_cols == 0
        if result.total_cycles > bound:
            violations.append(
                Violation(
                    prop="models",
                    message="engine exceeds the Eq. 4 closed-form bound",
                    expected=f"<= {bound}",
                    actual=result.total_cycles,
                    case=case,
                )
            )
        elif divides and result.total_cycles != bound:
            violations.append(
                Violation(
                    prop="models",
                    message="Eq. 4 must be exact when the mapped dims divide the array",
                    expected=bound,
                    actual=result.total_cycles,
                    case=case,
                )
            )
    else:
        dead = len(case.dead_partitions)
        if dead:
            bound = degraded_scaleout_runtime(
                mapping,
                config.partition_rows,
                config.partition_cols,
                config.effective_array_rows,
                config.effective_array_cols,
                dead_partitions=dead,
            )
            label = "closed-form degraded scale-out bound"
        else:
            bound = scaleout_runtime(
                mapping,
                config.partition_rows,
                config.partition_cols,
                config.effective_array_rows,
                config.effective_array_cols,
            )
            label = "Eq. 5/6 closed-form bound"
        if result.total_cycles > bound:
            violations.append(
                Violation(
                    prop="models",
                    message=f"engine exceeds the {label}",
                    expected=f"<= {bound}",
                    actual=result.total_cycles,
                    case=case,
                )
            )
    return violations


def oracle_shape_classes(case: VerifyCase) -> List[Violation]:
    """Iterative fold walk vs. the O(1) shape-class aggregation.

    ``FoldPlan.shape_classes`` powers the closed-form fast path (PR 4)
    and the future vectorized sweep compiler; it must reproduce the
    fold-by-fold walk exactly: same fold population, same mapped-PE
    total, same summed fold latency.
    """
    from repro.analytical.runtime import fold_runtime

    violations: List[Violation] = []
    config = case.scaleup_config()
    plan = plan_folds(
        case.mapping(), config.effective_array_rows, config.effective_array_cols
    )
    classes = plan.shape_classes()

    multiplicity = sum(count for _, count in classes)
    if multiplicity != plan.num_folds:
        violations.append(
            Violation(
                prop="shape_classes",
                message="class multiplicities do not cover the fold grid",
                expected=plan.num_folds,
                actual=multiplicity,
                case=case,
            )
        )

    iter_shapes: Dict = {}
    for fold in plan.folds():
        key = (fold.rows, fold.cols)
        iter_shapes[key] = iter_shapes.get(key, 0) + 1
    class_shapes: Dict = {}
    for fold, count in classes:
        key = (fold.rows, fold.cols)
        class_shapes[key] = class_shapes.get(key, 0) + count
    if iter_shapes != class_shapes:
        violations.append(
            Violation(
                prop="shape_classes",
                message="shape-class population diverges from the iterative folds",
                expected=iter_shapes,
                actual=class_shapes,
                case=case,
            )
        )

    iter_pes = sum(fold.mapped_pes for fold in plan.folds())
    class_pes = sum(fold.mapped_pes * count for fold, count in classes)
    if iter_pes != class_pes or plan.total_mapped_pe_cycles != case.mapping().macs:
        violations.append(
            Violation(
                prop="shape_classes",
                message="mapped-PE aggregation diverges (MAC conservation)",
                expected=(iter_pes, case.mapping().macs),
                actual=(class_pes, plan.total_mapped_pe_cycles),
                case=case,
            )
        )

    t = case.mapping().t
    iter_latency = sum(fold_runtime(f.rows, f.cols, t) for f in plan.folds())
    class_latency = sum(
        fold_runtime(f.rows, f.cols, t) * count for f, count in classes
    )
    if iter_latency != class_latency:
        violations.append(
            Violation(
                prop="shape_classes",
                message="summed fold latency diverges between the two walks",
                expected=iter_latency,
                actual=class_latency,
                case=case,
            )
        )
    return violations


#: Golden-array simulation is O(R*C) registers per cycle; keep it to
#: cases where the full PE-level replay stays fast.
_GOLDEN_MAX_DIM = 24
_GOLDEN_MAX_ARRAY = 8


def golden_applies(case: VerifyCase) -> bool:
    return (
        not case.is_degraded
        and case.is_monolithic
        and max(case.m, case.k, case.n) <= _GOLDEN_MAX_DIM
        and max(case.array_rows, case.array_cols) <= _GOLDEN_MAX_ARRAY
    )


def oracle_golden(case: VerifyCase) -> List[Violation]:
    """Engine vs. the PE-register-level golden array (numerics included)."""
    if not golden_applies(case):
        return []
    try:
        report = validate_configuration(
            case.m,
            case.k,
            case.n,
            case.config().dataflow,
            case.array_rows,
            case.array_cols,
        )
    except ReproError as exc:
        return [
            Violation(
                prop="golden",
                message=f"golden replay refused a valid case: {exc}",
                case=case,
            )
        ]
    if report.passed:
        return []
    return [
        Violation(
            prop="golden",
            message="engine, golden array and Eq. 4 disagree",
            expected=f"golden {report.golden_cycles}, Eq.4 {report.analytical_cycles}",
            actual=f"engine {report.engine_cycles}",
            case=case,
        )
    ]
