"""Differential verification: fuzzing, metamorphic properties, shrinking.

``repro.verify`` is the subsystem behind the ``repro verify`` CLI
subcommand.  It cross-examines the library's independent models of the
same machine (iterative engine, closed-form analytical equations,
fold-plan shape classes, PE-level golden array, degraded-mode remap
prediction), checks metamorphic relations between related scenarios,
shrinks every violation to a minimal repro, publishes it as a
replayable regression bundle, and guards the paper's reproduced
numbers behind blessed golden baselines.
"""

from repro.verify.baseline import (
    BaselineReport,
    assert_baselines,
    bless,
    blessed_experiments,
    check_baselines,
    load_baseline,
)
from repro.verify.cases import VerifyCase
from repro.verify.corpus import (
    CORPUS_DIRNAME,
    bundle_from_violation,
    load_bundle,
    load_corpus,
    replay_bundle,
    replay_corpus,
    write_bundle,
)
from repro.verify.generate import CaseGenerator
from repro.verify.harness import VerifyReport, run_verify
from repro.verify.mutation import MUTANTS, MutationReport, run_mutation_smoke
from repro.verify.oracles import Violation
from repro.verify.properties import PROPERTIES, Property, resolve_properties
from repro.verify.shrink import shrink_case, shrink_text

__all__ = [
    "BaselineReport",
    "CORPUS_DIRNAME",
    "CaseGenerator",
    "MUTANTS",
    "MutationReport",
    "PROPERTIES",
    "Property",
    "VerifyCase",
    "VerifyReport",
    "Violation",
    "assert_baselines",
    "bless",
    "blessed_experiments",
    "bundle_from_violation",
    "check_baselines",
    "load_baseline",
    "load_bundle",
    "load_corpus",
    "replay_bundle",
    "replay_corpus",
    "resolve_properties",
    "run_mutation_smoke",
    "run_verify",
    "shrink_case",
    "shrink_text",
    "write_bundle",
]
