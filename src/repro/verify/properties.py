"""Metamorphic properties and the verification property registry.

Where the differential oracles (:mod:`repro.verify.oracles`) compare
*models* of one scenario, metamorphic properties compare *related
scenarios* whose results must stand in a known relation even when no
model predicts the absolute numbers:

* ``conservation`` — repartitioning a layer from scale-up to scale-out
  must conserve MACs (all dataflows) and OFMAP SRAM writes (output
  stationary): work can be sliced, never created or lost;
* ``monotone_array`` — doubling both array edges can only speed a
  layer up (the engine maps edge folds exactly);
* ``monotone_batch`` — doubling the batch (GEMM M) can only slow it
  down;
* ``permutation`` — a network's summed totals are invariant under
  layer order;
* ``cache_identity`` — memoized, cold and cache-disabled runs are
  identical, and the result-store wire codec round-trips losslessly;
* ``vectorized`` — the numpy sweep-compiler kernels
  (:mod:`repro.analytical.vectorized`) are bit-identical to the scalar
  analytical model (rel_tol 0);
* ``serial_parallel`` — a worker-pool sweep is row-identical to the
  serial walk (session-level: runs once per harness invocation);
* ``parser_topology`` / ``parser_config`` — adversarial parser inputs
  either parse to sane values or raise the *typed* error with a
  line-numbered message; any other exception is a finding.

Each property is registered as a :class:`Property` so the harness, the
shrinker and the regression-corpus replayer can address it by name.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.config.parser import parse_config_text
from repro.engine.simulator import Simulator
from repro.errors import ConfigError, ReproError, TopologyError
from repro.memory.bandwidth import compute_dram_traffic
from repro.perf.cache import cache
from repro.store.records import decode_result_pair, encode_result_pair
from repro.topology.network import Network
from repro.topology.parser import parse_topology_text
from repro.verify.cases import VerifyCase
from repro.verify.oracles import (
    Violation,
    oracle_golden,
    oracle_models,
    oracle_shape_classes,
    simulate_case,
)

#: Keep derived comparison runs (doubled arrays/batches) tractable.
_MONOTONE_MAX_COST = 200_000


# ----------------------------------------------------------------------
# Metamorphic properties over simulation cases
# ----------------------------------------------------------------------
def prop_conservation(case: VerifyCase) -> List[Violation]:
    """Scale-up -> scale-out repartitioning conserves work."""
    if case.is_monolithic and not case.is_degraded:
        return []
    violations: List[Violation] = []
    grid_result = simulate_case(case)
    mapping = case.mapping()
    if grid_result.macs != mapping.macs:
        violations.append(
            Violation(
                prop="conservation",
                message="MACs not conserved across the partition grid",
                expected=mapping.macs,
                actual=grid_result.macs,
                case=case,
            )
        )
    # OFMAP elements are written exactly once under output stationary:
    # Eq. 5 tiles the output space disjointly, so the grid total must
    # equal the monolithic total (healthy grids only — remapped tiles
    # re-run, but still write each output element once; PE faults
    # change the fold grid, not the output volume).
    if case.dataflow == "os" and not case.is_monolithic:
        mono = case.replace(
            partition_rows=1, partition_cols=1, dead_partitions=()
        )
        mono_result = simulate_case(mono)
        if grid_result.sram.ofmap_writes != mono_result.sram.ofmap_writes:
            violations.append(
                Violation(
                    prop="conservation",
                    message="OFMAP SRAM writes not conserved under repartitioning",
                    expected=mono_result.sram.ofmap_writes,
                    actual=grid_result.sram.ofmap_writes,
                    case=case,
                )
            )
    return violations


def _monolithic_healthy(case: VerifyCase) -> VerifyCase:
    return case.replace(
        partition_rows=1,
        partition_cols=1,
        dead_pe_rows=(),
        dead_pe_cols=(),
        dead_partitions=(),
    )


def prop_monotone_array(case: VerifyCase) -> List[Violation]:
    """Cycles are non-increasing when both array edges double."""
    base = _monolithic_healthy(case)
    if base.cost > _MONOTONE_MAX_COST:
        return []
    grown = base.replace(
        array_rows=base.array_rows * 2, array_cols=base.array_cols * 2
    )
    small = simulate_case(base).total_cycles
    big = simulate_case(grown).total_cycles
    if big > small:
        return [
            Violation(
                prop="monotone_array",
                message="doubling the array made the layer slower",
                expected=f"<= {small}",
                actual=big,
                case=base,
            )
        ]
    return []


def prop_monotone_batch(case: VerifyCase) -> List[Violation]:
    """Cycles are non-decreasing when the batch (GEMM M) doubles."""
    base = _monolithic_healthy(case)
    if base.cost > _MONOTONE_MAX_COST:
        return []
    batched = base.replace(m=base.m * 2)
    single = simulate_case(base).total_cycles
    double = simulate_case(batched).total_cycles
    if double < single:
        return [
            Violation(
                prop="monotone_batch",
                message="doubling the batch made the layer faster",
                expected=f">= {single}",
                actual=double,
                case=base,
            )
        ]
    return []


def prop_permutation(case: VerifyCase) -> List[Violation]:
    """Network totals are invariant under layer permutation."""
    from repro.topology.layer import GemmLayer

    base = _monolithic_healthy(case)
    layers = [
        GemmLayer(name="L0", m=base.m, k=base.k, n=base.n),
        GemmLayer(name="L1", m=base.k, k=base.m, n=base.n),
        GemmLayer(name="L2", m=base.m + 1, k=base.k, n=max(1, base.n // 2)),
    ]
    sim = Simulator(base.scaleup_config(), loop_order=base.loop_order)
    forward = sim.run_network(Network("forward", layers))
    backward = sim.run_network(Network("backward", list(reversed(layers))))

    def totals(run) -> Dict[str, int]:
        return {
            "cycles": sum(r.total_cycles for r in run.layers),
            "macs": sum(r.macs for r in run.layers),
            "dram_read_bytes": sum(r.dram_read_bytes for r in run.layers),
            "dram_write_bytes": sum(r.dram_write_bytes for r in run.layers),
        }

    expected, actual = totals(forward), totals(backward)
    if expected != actual:
        return [
            Violation(
                prop="permutation",
                message="sweep totals changed when the layer order was permuted",
                expected=expected,
                actual=actual,
                case=base,
            )
        ]
    return []


def prop_cache_identity(case: VerifyCase) -> List[Violation]:
    """Cold, memoized and cache-disabled runs must be identical.

    Also exercises cache-key isolation across dataflows (a key that
    drops any field would alias these runs) and the result-store wire
    codec (encode/decode must round-trip losslessly).
    """
    violations: List[Violation] = []
    was_enabled = cache.enabled
    dataflows = ("os", "ws", "is")
    try:
        # Ground truth first, with the cache fully off.
        cache.disable()
        uncached = {
            dataflow: simulate_case(case.replace(dataflow=dataflow))
            for dataflow in dataflows
        }
        # Then ONE shared cache lifetime across all three dataflows: a
        # key that ignored the dataflow would alias their entries, and
        # a later cold run would silently return the wrong machine's
        # result.
        cache.enable()
        cache.clear()
        for dataflow in dataflows:
            variant = case.replace(dataflow=dataflow)
            cold = simulate_case(variant)
            memoized = simulate_case(variant)
            if not (cold == memoized == uncached[dataflow]):
                violations.append(
                    Violation(
                        prop="cache_identity",
                        message=f"cache changed the {dataflow} result",
                        expected=repr(uncached[dataflow]),
                        actual=f"cold={cold!r} hit={memoized!r}",
                        case=variant,
                    )
                )
                break
    finally:
        if was_enabled:
            cache.enable()
            cache.clear()
        else:
            cache.disable()

    config = case.scaleup_config()
    sim = Simulator(config, loop_order=case.loop_order)
    layer = case.layer()
    result = sim.run_layer(layer)
    traffic = compute_dram_traffic(
        sim.engine(layer), sim.buffers, config.word_bytes, loop_order=case.loop_order
    )
    decoded_result, decoded_traffic = decode_result_pair(
        encode_result_pair(result, traffic)
    )
    from dataclasses import replace as _replace

    if _replace(decoded_result, layer_name=result.layer_name) != result:
        violations.append(
            Violation(
                prop="cache_identity",
                message="result-store codec did not round-trip the LayerResult",
                expected=repr(result),
                actual=repr(decoded_result),
                case=case,
            )
        )
    if decoded_traffic != traffic:
        violations.append(
            Violation(
                prop="cache_identity",
                message="result-store codec did not round-trip the DramTraffic",
                case=case,
            )
        )
    return violations


def prop_vectorized(case: VerifyCase) -> List[Violation]:
    """Vectorized numpy kernels are bit-identical to the scalar model.

    The sweep compiler (:mod:`repro.perf.compiler`) prices whole design
    spaces through :mod:`repro.analytical.vectorized`; this property
    pins every kernel — Eq. 4/5/6 runtime, mapping utilization, the
    exact edge-fold cycle count, Table III batch mapping and the
    per-operand closed-form traffic — to its scalar twin with rel_tol 0
    on the fuzzer's boundary-biased cases.
    """
    from repro.analytical.runtime import (
        mapping_utilization,
        scaleout_runtime,
        scaleup_runtime,
    )
    from repro.analytical.traffic import estimate_traffic
    from repro.analytical.vectorized import (
        estimate_traffic_v,
        mapping_utilization_v,
        scaleout_runtime_v,
        scaleup_runtime_v,
    )
    from repro.config.hardware import Dataflow
    from repro.mapping.dims import map_gemm_batch
    from repro.memory.buffers import BufferSet

    mapping = case.mapping()
    sr, sc, t = mapping.sr, mapping.sc, mapping.t
    rows, cols = case.array_rows, case.array_cols
    violations: List[Violation] = []

    def expect(name: str, scalar, vectorized) -> None:
        if scalar != vectorized:
            violations.append(
                Violation(
                    prop="vectorized",
                    message=f"{name}: vectorized kernel diverged from scalar",
                    expected=scalar,
                    actual=vectorized,
                    case=case,
                )
            )

    sr_v, sc_v, t_v = map_gemm_batch(
        case.m, case.k, case.n, Dataflow.from_string(case.dataflow)
    )
    expect("map_gemm_batch", (sr, sc, t), (int(sr_v), int(sc_v), int(t_v)))
    expect(
        "scaleup_runtime",
        scaleup_runtime(mapping, rows, cols),
        int(scaleup_runtime_v(sr, sc, t, rows, cols)),
    )
    expect(
        "scaleout_runtime",
        scaleout_runtime(
            mapping, case.partition_rows, case.partition_cols, rows, cols
        ),
        int(
            scaleout_runtime_v(
                sr, sc, t, case.partition_rows, case.partition_cols, rows, cols
            )
        ),
    )
    expect(
        "mapping_utilization",
        mapping_utilization(mapping, rows, cols),
        float(mapping_utilization_v(sr, sc, rows, cols)),
    )

    buffers = BufferSet.from_config(case.scaleup_config())
    scalar = estimate_traffic(mapping, rows, cols, buffers, case.word_bytes)
    ifmap, filt, ofmap, cycles = estimate_traffic_v(
        sr,
        sc,
        t,
        Dataflow.from_string(case.dataflow),
        rows,
        cols,
        buffers.ifmap.working_bytes,
        buffers.filter.working_bytes,
        case.word_bytes,
    )
    expect("traffic.ifmap_bytes", scalar.ifmap_bytes, int(ifmap))
    expect("traffic.filter_bytes", scalar.filter_bytes, int(filt))
    expect("traffic.ofmap_bytes", scalar.ofmap_bytes, int(ofmap))
    expect("traffic.total_cycles", scalar.total_cycles, int(cycles))
    return violations


# ----------------------------------------------------------------------
# Session property: serial vs. parallel sweep byte-identity
# ----------------------------------------------------------------------
def prop_serial_parallel(_case: Optional[VerifyCase] = None) -> List[Violation]:
    """A 2-worker pool sweep must produce row-identical results."""
    from repro.serve.jobs import sweep_measure
    from repro.sweep import run_sweep_report
    from repro.topology.layer import GemmLayer

    layer = GemmLayer(name="verify_pp", m=33, k=9, n=17)
    measure = functools.partial(sweep_measure, layer=layer, macs=1024)
    serial_rows, _ = run_sweep_report(measure, partitions=[1, 4])
    parallel_rows, _ = run_sweep_report(measure, workers=2, partitions=[1, 4])
    if serial_rows != parallel_rows:
        return [
            Violation(
                prop="serial_parallel",
                message="parallel sweep rows diverge from the serial walk",
                expected=repr(serial_rows),
                actual=repr(parallel_rows),
            )
        ]
    return []


# ----------------------------------------------------------------------
# Parser fuzz properties (text inputs)
# ----------------------------------------------------------------------
_TOPOLOGY_DIM_BOUND = 2**31


def check_topology_text(text: str) -> List[Violation]:
    """Adversarial topology text: typed errors or sane layers, only."""
    try:
        network = parse_topology_text(text, name="fuzz")
    except TopologyError:
        return []  # the documented, typed outcome
    except Exception as exc:  # noqa: BLE001 - the finding we hunt for
        return [
            Violation(
                prop="parser_topology",
                message=f"parser leaked {type(exc).__name__}: {exc}",
                expected="Network or TopologyError",
                actual=type(exc).__name__,
                text=text,
            )
        ]
    for layer in network:
        dims = (layer.gemm_m, layer.gemm_k, layer.gemm_n)
        if any(d < 1 or d > _TOPOLOGY_DIM_BOUND**2 for d in dims):
            return [
                Violation(
                    prop="parser_topology",
                    message=f"parser accepted absurd dims {dims} for {layer.name!r}",
                    text=text,
                )
            ]
    return []


def check_config_text(text: str) -> List[Violation]:
    """Adversarial config text: typed errors or a valid config, only."""
    try:
        config = parse_config_text(text)
    except ConfigError:
        return []
    except Exception as exc:  # noqa: BLE001 - the finding we hunt for
        return [
            Violation(
                prop="parser_config",
                message=f"parser leaked {type(exc).__name__}: {exc}",
                expected="HardwareConfig or ConfigError",
                actual=type(exc).__name__,
                text=text,
            )
        ]
    if config.array_rows * config.array_cols > _TOPOLOGY_DIM_BOUND:
        return [
            Violation(
                prop="parser_config",
                message=f"parser accepted an absurd array "
                        f"{config.array_rows}x{config.array_cols}",
                text=text,
            )
        ]
    return []


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Property:
    """One named verification property the harness can schedule."""

    name: str
    kind: str  # "case" | "text-topology" | "text-config" | "session"
    check: Callable[..., List[Violation]]
    doc: str

    def applies(self, case: VerifyCase) -> bool:
        if self.name == "golden":
            from repro.verify.oracles import golden_applies

            return golden_applies(case)
        return True


PROPERTIES: Dict[str, Property] = {
    prop.name: prop
    for prop in (
        Property("models", "case", oracle_models,
                 "engine vs exact analytical prediction vs Eq. 4-6 bounds"),
        Property("shape_classes", "case", oracle_shape_classes,
                 "iterative fold walk vs O(1) shape-class aggregation"),
        Property("golden", "case", oracle_golden,
                 "engine vs PE-register-level golden array (small cases)"),
        Property("conservation", "case", prop_conservation,
                 "MAC/OFMAP-write conservation under repartitioning"),
        Property("monotone_array", "case", prop_monotone_array,
                 "cycles non-increasing when the array doubles"),
        Property("monotone_batch", "case", prop_monotone_batch,
                 "cycles non-decreasing when the batch doubles"),
        Property("permutation", "case", prop_permutation,
                 "network totals invariant under layer order"),
        Property("cache_identity", "case", prop_cache_identity,
                 "cold == memoized == cache-off; store codec round-trips"),
        Property("vectorized", "case", prop_vectorized,
                 "vectorized numpy kernels bit-identical to the scalar model"),
        Property("serial_parallel", "session", prop_serial_parallel,
                 "2-worker sweep row-identical to serial (runs once)"),
        Property("parser_topology", "text-topology", check_topology_text,
                 "topology parser: typed errors or sane layers only"),
        Property("parser_config", "text-config", check_config_text,
                 "config parser: typed errors or a valid config only"),
    )
}


def resolve_properties(names: Optional[Sequence[str]] = None) -> List[Property]:
    """Map ``--props`` names onto registry entries (all, by default)."""
    if not names:
        return list(PROPERTIES.values())
    chosen: List[Property] = []
    for name in names:
        key = name.strip()
        if not key:
            continue
        if key not in PROPERTIES:
            from repro.errors import VerificationError

            raise VerificationError(
                f"unknown property {key!r}; available: {sorted(PROPERTIES)}"
            )
        chosen.append(PROPERTIES[key])
    if not chosen:
        from repro.errors import VerificationError

        raise VerificationError("no properties selected")
    return chosen
