"""The differential-verification harness: budgeted fuzz -> shrink -> bundle.

:func:`run_verify` drives everything the ``repro verify`` subcommand
exposes: a seeded deterministic stream of cases and parser inputs is
pushed through the selected properties until the time budget (or case
cap) runs out; every violation is shrunk to a minimal repro and
published as a replayable bundle in the regression corpus.

The harness is observable (``verify.*`` counters, a span per case) and
deterministic: ``(seed, index)`` identifies every generated input, so
the nightly fuzz job's findings replay locally without the artifact.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.obs import metrics, trace
from repro.verify.cases import VerifyCase
from repro.verify.corpus import bundle_from_violation, write_bundle
from repro.verify.generate import CaseGenerator
from repro.verify.oracles import Violation
from repro.verify.properties import Property, resolve_properties
from repro.verify.shrink import shrink_case, shrink_text

logger = logging.getLogger("repro.verify")

#: Hard cap on generated cases when no explicit ``max_cases`` is given.
DEFAULT_MAX_CASES = 2000


@dataclass
class VerifyReport:
    """Outcome of one harness invocation."""

    seed: int
    budget: float
    props: List[str]
    cases_run: int = 0
    checks_run: int = 0
    elapsed: float = 0.0
    violations: List[Violation] = field(default_factory=list)
    bundles: List[Path] = field(default_factory=list)
    checks_by_prop: Dict[str, int] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        text = (
            f"[{status}] verify seed={self.seed}: {self.cases_run} case(s), "
            f"{self.checks_run} check(s) across {len(self.props)} propert(ies) "
            f"in {self.elapsed:.1f}s"
        )
        if self.violations:
            text += f"; {len(self.violations)} violation(s)"
            if self.bundles:
                names = ", ".join(p.name for p in self.bundles)
                text += f" -> {names}"
        return text


def _check(prop: Property, payload) -> List[Violation]:
    """Run one property, counting the check and any violations."""
    if metrics.enabled:
        metrics.counter("verify.checks").add()
        metrics.counter(f"verify.checks.{prop.name}").add()
    violations = prop.check(payload) if payload is not None else prop.check()
    if violations and metrics.enabled:
        metrics.counter("verify.violations").add(len(violations))
    return violations


def _shrink_violation(
    prop: Property, violation: Violation, shrink: bool
) -> Violation:
    """Minimize the violating input while the same property still fails."""
    if not shrink:
        return violation
    if violation.case is not None:
        def case_fails(candidate: VerifyCase) -> bool:
            return bool(prop.check(candidate))

        small = shrink_case(violation.case, case_fails)
        if small != violation.case:
            fresh = prop.check(small)
            if fresh:
                return fresh[0]
    elif violation.text is not None:
        def text_fails(candidate: str) -> bool:
            return bool(prop.check(candidate))

        small_text = shrink_text(violation.text, text_fails)
        if small_text != violation.text:
            fresh = prop.check(small_text)
            if fresh:
                return fresh[0]
    return violation


def run_verify(
    budget: float = 30.0,
    seed: int = 0,
    props: Optional[Sequence[str]] = None,
    max_cases: Optional[int] = None,
    corpus_dir: Optional[Union[str, Path]] = None,
    shrink: bool = True,
) -> VerifyReport:
    """Fuzz the selected properties until the budget runs out.

    ``budget`` is a wall-clock ceiling in seconds; ``max_cases`` caps
    the generated case count independently (whichever ends first).
    When ``corpus_dir`` is given, every violation is shrunk and written
    there as a replayable regression bundle.
    """
    if budget <= 0:
        from repro.errors import VerificationError

        raise VerificationError(f"--budget must be positive, got {budget}")
    chosen = resolve_properties(props)
    case_props = [p for p in chosen if p.kind == "case"]
    session_props = [p for p in chosen if p.kind == "session"]
    topo_props = [p for p in chosen if p.kind == "text-topology"]
    config_props = [p for p in chosen if p.kind == "text-config"]

    generator = CaseGenerator(seed)
    report = VerifyReport(
        seed=seed, budget=budget, props=[p.name for p in chosen]
    )
    cap = max_cases if max_cases is not None else DEFAULT_MAX_CASES
    started = time.monotonic()
    deadline = started + budget

    def record(prop: Property, violations: List[Violation]) -> None:
        report.checks_run += 1
        report.checks_by_prop[prop.name] = report.checks_by_prop.get(prop.name, 0) + 1
        for violation in violations:
            shrunk = _shrink_violation(prop, violation, shrink)
            report.violations.append(shrunk)
            logger.error("verify violation: %s", shrunk.describe())
            if corpus_dir is not None:
                bundle = bundle_from_violation(shrunk, seed)
                path = write_bundle(corpus_dir, bundle)
                report.bundles.append(path)
                if metrics.enabled:
                    metrics.counter("verify.bundles").add()
                logger.error("regression bundle written to %s", path)

    # Session-level properties run once, up front (they are the most
    # expensive individually but amortize over the whole invocation).
    for prop in session_props:
        if time.monotonic() >= deadline:
            break
        with trace.span("verify.session_prop", prop=prop.name):
            record(prop, _check(prop, None))

    index = 0
    while time.monotonic() < deadline and report.cases_run < cap:
        case = generator.case(index)
        with trace.span("verify.case", index=index, case=case.describe()):
            if metrics.enabled:
                metrics.counter("verify.cases").add()
            for prop in case_props:
                if time.monotonic() >= deadline:
                    break
                if not prop.applies(case):
                    continue
                record(prop, _check(prop, case))
        for prop in topo_props:
            if time.monotonic() >= deadline:
                break
            record(prop, _check(prop, generator.topology_text(index)))
        for prop in config_props:
            if time.monotonic() >= deadline:
                break
            record(prop, _check(prop, generator.config_text(index)))
        report.cases_run += 1
        index += 1

    report.elapsed = time.monotonic() - started
    logger.info("%s", report.summary())
    return report
