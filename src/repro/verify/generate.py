"""Seeded randomized generation of verification inputs.

The generator is *deterministic in its seed*: case ``i`` of seed ``s``
is the same case on every machine and every run, so a violation found
in a nightly fuzz run reproduces locally from just ``(seed, index)``
even before its shrunk bundle lands in the corpus.

Two families of inputs are drawn:

* :meth:`CaseGenerator.case` — simulation scenarios
  (:class:`~repro.verify.cases.VerifyCase`): GEMM shapes biased toward
  the boundaries the folding arithmetic cares about (1, array-multiple,
  array±1), arrays, SRAM sizes, dataflows, partition grids and fault
  maps;
* :meth:`CaseGenerator.topology_text` / :meth:`config_text` —
  adversarial parser inputs mixing valid rows with NaN/inf, floats,
  absurd magnitudes, negatives and missing fields.
"""

from __future__ import annotations

import random
from typing import List

from repro.verify.cases import VerifyCase

_SRAM_SIZES = (1, 2, 4, 16, 64, 256)
_GRIDS = ((1, 1), (1, 2), (2, 1), (2, 2), (1, 4), (4, 1), (2, 4))
_DATAFLOWS = ("os", "ws", "is")

#: Tokens that historically break numeric parsers.
_POISON_CELLS = (
    "nan", "NaN", "inf", "-inf", "Infinity", "1e9", "3.5", "-4", "0",
    "99999999999999999999", "0x10", " 12 ", "", "twelve", "１２",
)


class CaseGenerator:
    """Deterministic stream of verification inputs for one seed."""

    def __init__(self, seed: int = 0):
        self.seed = seed

    def _rng(self, index: int, salt: str = "case") -> random.Random:
        return random.Random((self.seed, salt, index).__repr__())

    # ------------------------------------------------------------------
    # Simulation cases
    # ------------------------------------------------------------------
    def _dim(self, rng: random.Random, array_edge: int) -> int:
        """A GEMM dimension biased toward folding boundary values."""
        roll = rng.random()
        if roll < 0.15:
            return 1
        if roll < 0.35:
            # Exact multiple of the array edge: the divisible case where
            # Eq. 4 must be *exact*, not just an upper bound.
            return array_edge * rng.randint(1, 4)
        if roll < 0.55:
            # One off a multiple: the edge-fold case.
            return max(1, array_edge * rng.randint(1, 4) + rng.choice((-1, 1)))
        return rng.randint(1, 48)

    def _boundary_case(self, rng: random.Random) -> VerifyCase:
        """A healthy monolithic case whose mapped dims divide the array.

        Every fifth case is drawn from this directed slice so the
        Eq. 4 *exactness* branch (and the PE-level golden oracle's
        small-case gate) is exercised on every short budget, not just
        when the random stream happens to align.
        """
        array_rows = rng.choice((2, 3, 4, 6, 8))
        array_cols = rng.choice((2, 3, 4, 6, 8))
        dataflow = rng.choice(_DATAFLOWS)
        rows_mult = array_rows * rng.randint(1, 3)
        cols_mult = array_cols * rng.randint(1, 3)
        other = rng.randint(1, 12)
        # Table III: os maps (m, n), ws maps (k, n), is maps (k, m)
        # onto the (rows, cols) of the array.
        if dataflow == "os":
            m, k, n = rows_mult, other, cols_mult
        elif dataflow == "ws":
            m, k, n = other, rows_mult, cols_mult
        else:
            m, k, n = cols_mult, rows_mult, other
        return VerifyCase(
            m=m, k=k, n=n, dataflow=dataflow,
            array_rows=array_rows, array_cols=array_cols,
        )

    def case(self, index: int) -> VerifyCase:
        """Deterministically draw case ``index`` of this seed."""
        rng = self._rng(index)
        if index % 5 == 2:
            return self._boundary_case(rng)
        array_rows = rng.choice((1, 2, 3, 4, 6, 8, 12, 16))
        array_cols = rng.choice((1, 2, 3, 4, 6, 8, 12, 16))
        partition_rows, partition_cols = rng.choice(_GRIDS)
        case = VerifyCase(
            m=self._dim(rng, array_rows),
            k=self._dim(rng, array_rows),
            n=self._dim(rng, array_cols),
            dataflow=rng.choice(_DATAFLOWS),
            array_rows=array_rows,
            array_cols=array_cols,
            partition_rows=partition_rows,
            partition_cols=partition_cols,
            ifmap_sram_kb=rng.choice(_SRAM_SIZES),
            filter_sram_kb=rng.choice(_SRAM_SIZES),
            ofmap_sram_kb=rng.choice(_SRAM_SIZES),
            word_bytes=rng.choice((1, 1, 2, 4)),
            loop_order=rng.choice(("row", "row", "col")),
        )
        # A quarter of the stream runs degraded: the differential
        # oracles must hold under faults too, not just on healthy
        # hardware.
        if rng.random() < 0.25:
            case = self._degrade(case, rng)
        assert case.is_valid(), case
        return case

    def _degrade(self, case: VerifyCase, rng: random.Random) -> VerifyCase:
        changes = {}
        if case.array_rows > 1 and rng.random() < 0.5:
            count = rng.randint(1, min(2, case.array_rows - 1))
            changes["dead_pe_rows"] = tuple(
                sorted(rng.sample(range(case.array_rows), count))
            )
        if case.array_cols > 1 and rng.random() < 0.5:
            count = rng.randint(1, min(2, case.array_cols - 1))
            changes["dead_pe_cols"] = tuple(
                sorted(rng.sample(range(case.array_cols), count))
            )
        grid = case.partition_rows * case.partition_cols
        if grid > 1 and rng.random() < 0.6:
            coords = [
                (p, q)
                for p in range(case.partition_rows)
                for q in range(case.partition_cols)
            ]
            count = rng.randint(1, grid - 1)
            changes["dead_partitions"] = tuple(sorted(rng.sample(coords, count)))
        return case.replace(**changes)

    # ------------------------------------------------------------------
    # Parser fuzz inputs
    # ------------------------------------------------------------------
    def topology_text(self, index: int) -> str:
        """Adversarial Table II CSV contents for parser fuzzing."""
        rng = self._rng(index, salt="topo")
        lines: List[str] = []
        if rng.random() < 0.3:
            lines.append(
                "Layer name, IFMAP Height, IFMAP Width, Filter Height, "
                "Filter Width, Channels, Num Filter, Strides,"
            )
        for row in range(rng.randint(0, 5)):
            if rng.random() < 0.5:
                cells = [f"layer{row}"] + [str(rng.randint(1, 64)) for _ in range(7)]
            else:
                cells = [f"layer{row}"]
                for _ in range(rng.randint(4, 9)):
                    if rng.random() < 0.4:
                        cells.append(rng.choice(_POISON_CELLS))
                    else:
                        cells.append(str(rng.randint(-3, 10**12)))
            line = ",".join(cells)
            if rng.random() < 0.3:
                line += ","
            lines.append(line)
            if rng.random() < 0.2:
                lines.append("")
        text = "\n".join(lines)
        if rng.random() < 0.15:
            text = "\ufeff" + text
        return text

    def config_text(self, index: int) -> str:
        """Adversarial INI config contents for parser fuzzing."""
        rng = self._rng(index, salt="config")
        keys = (
            "ArrayHeight", "ArrayWidth", "IfmapSramSz", "FilterSramSz",
            "OfmapSramSz", "Dataflow", "WordBytes", "PartitionRows",
            "PartitionCols", "Bogus", "run_name",
        )
        lines = ["[architecture_presets]"]
        if rng.random() < 0.2:
            lines.insert(0, "[general]\nrun_name = fuzz")
        for _ in range(rng.randint(0, 6)):
            key = rng.choice(keys)
            if key == "Dataflow":
                value = rng.choice(("os", "ws", "is", "nw", "NaN", "3"))
            elif rng.random() < 0.4:
                value = rng.choice(_POISON_CELLS)
            else:
                value = str(rng.randint(-2, 10**12))
            lines.append(f"{key} = {value}")
        if rng.random() < 0.1:
            lines.append("garbage line without equals")
        return "\n".join(lines)
