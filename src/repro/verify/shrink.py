"""Shrink a violating input to a minimal reproduction.

Fuzzers find big ugly counterexamples; debuggers want tiny ones.  The
shrinker performs greedy delta-debugging over the two input families:

* **cases** — repeatedly try simplifying transformations (halve a GEMM
  dimension, shrink the array, drop a fault, collapse the partition
  grid, reset SRAM/word size to defaults) and keep any candidate that
  still violates the same property, until a full pass makes no
  progress;
* **texts** — drop lines, then halve the text, keeping any candidate
  that still reproduces.

Shrinking re-executes the violating property once per candidate, so a
step budget bounds the work; every accepted step is counted in the
``verify.shrink.steps`` metric.
"""

from __future__ import annotations

from typing import Callable, Iterator, List

from repro.obs import metrics
from repro.verify.cases import VerifyCase

#: Upper bound on property re-executions during one shrink.
DEFAULT_SHRINK_BUDGET = 400


def _case_candidates(case: VerifyCase) -> Iterator[VerifyCase]:
    """Yield simpler variants of ``case``, most aggressive first."""
    # Drop fault state entirely, then one component at a time.
    if case.is_degraded:
        yield case.replace(
            dead_pe_rows=(), dead_pe_cols=(), dead_partitions=()
        )
        if case.dead_partitions:
            yield case.replace(dead_partitions=case.dead_partitions[:-1])
        if case.dead_pe_rows:
            yield case.replace(dead_pe_rows=case.dead_pe_rows[:-1])
        if case.dead_pe_cols:
            yield case.replace(dead_pe_cols=case.dead_pe_cols[:-1])
    # Collapse the grid.
    if not case.is_monolithic:
        yield case.replace(
            partition_rows=1, partition_cols=1, dead_partitions=()
        )
    # Numeric fields: halve toward 1, then decrement.
    for field in ("m", "k", "n", "array_rows", "array_cols",
                  "partition_rows", "partition_cols"):
        value = getattr(case, field)
        if value > 1:
            yield case.replace(**{field: value // 2})
            yield case.replace(**{field: value - 1})
    # Reset incidental knobs to their defaults.
    for field, default in (
        ("ifmap_sram_kb", 64), ("filter_sram_kb", 64), ("ofmap_sram_kb", 64),
        ("word_bytes", 1),
    ):
        if getattr(case, field) != default:
            yield case.replace(**{field: default})
    if case.loop_order != "row":
        yield case.replace(loop_order="row")
    if case.dataflow != "os":
        yield case.replace(dataflow="os")


def shrink_case(
    case: VerifyCase,
    still_fails: Callable[[VerifyCase], bool],
    budget: int = DEFAULT_SHRINK_BUDGET,
) -> VerifyCase:
    """Greedily minimize ``case`` while ``still_fails`` keeps holding."""
    current = case
    spent = 0
    progressed = True
    while progressed and spent < budget:
        progressed = False
        for candidate in _case_candidates(current):
            if spent >= budget:
                break
            if not candidate.is_valid() or candidate.cost >= current.cost:
                continue
            spent += 1
            try:
                failing = still_fails(candidate)
            except Exception:  # noqa: BLE001 - a crash is also a repro
                failing = True
            if failing:
                current = candidate
                progressed = True
                if metrics.enabled:
                    metrics.counter("verify.shrink.steps").add()
                break
    return current


def shrink_text(
    text: str,
    still_fails: Callable[[str], bool],
    budget: int = DEFAULT_SHRINK_BUDGET,
) -> str:
    """Minimize a violating parser input: drop lines, then halve."""
    current = text
    spent = 0
    progressed = True
    while progressed and spent < budget:
        progressed = False
        lines = current.splitlines()
        candidates: List[str] = []
        for index in range(len(lines)):
            candidates.append("\n".join(lines[:index] + lines[index + 1:]))
        if len(current) > 2:
            candidates.append(current[: len(current) // 2])
            candidates.append(current[len(current) // 2:])
        for candidate in candidates:
            if spent >= budget:
                break
            if candidate == current or len(candidate) >= len(current):
                continue
            spent += 1
            try:
                failing = still_fails(candidate)
            except Exception:  # noqa: BLE001
                failing = True
            if failing:
                current = candidate
                progressed = True
                if metrics.enabled:
                    metrics.counter("verify.shrink.steps").add()
                break
    return current
