"""Mutation smoke: prove the harness catches the bugs it exists for.

A verification harness that never fires is indistinguishable from one
that cannot fire.  Each :class:`Mutant` here installs one seeded,
realistic defect — an off-by-one in the analytical runtime, a cache
key that forgets the dataflow, a degraded-mode prediction that drifts,
a shape-class aggregation that drops a class — and then runs the very
same :func:`~repro.verify.harness.run_verify` loop against it.  Every
mutant must be *killed* (detected, shrunk and bundled); any survivor
fails the smoke with :class:`~repro.errors.VerificationError`.

The smoke first confirms the unmutated code passes the same budget
clean, so a kill demonstrably comes from the seeded defect and not
from ambient noise.
"""

from __future__ import annotations

import contextlib
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, ContextManager, Dict, List, Optional, Tuple, Union

from repro.errors import VerificationError
from repro.obs import metrics
from repro.verify.harness import run_verify

#: Cases per mutant: enough for the generator's dividing/degraded bias
#: to exercise every targeted relationship, small enough to stay quick.
DEFAULT_CASES_PER_MUTANT = 12


def _patch_analytical_off_by_one() -> ContextManager:
    """Eq. 1 gains a spurious cycle: tau_F = 2R + C + T - 1."""
    import unittest.mock as mock

    import repro.analytical.runtime as runtime

    real = runtime.fold_runtime
    return mock.patch.object(
        runtime, "fold_runtime", lambda rows, cols, t: real(rows, cols, t) + 1
    )


def _patch_cache_dataflow_blind() -> ContextManager:
    """The memoization key stops distinguishing dataflows."""
    import unittest.mock as mock

    import repro.engine.simulator as simulator

    real = simulator.simulation_key

    def blind_key(config, *args, **kwargs):
        key = list(real(config, *args, **kwargs))
        key[3] = "any-dataflow"
        return tuple(key)

    return mock.patch.object(simulator, "simulation_key", blind_key)


def _patch_remap_off_by_one() -> ContextManager:
    """The degraded-mode exact prediction under-counts by one cycle."""
    import unittest.mock as mock

    import repro.resilience.remap as remap

    real = remap.predict_layer_cycles
    return mock.patch.object(
        remap,
        "predict_layer_cycles",
        lambda mapping, config: real(mapping, config) - 1,
    )


def _patch_shape_class_drop() -> ContextManager:
    """The O(1) aggregation silently loses its last shape class."""
    import unittest.mock as mock

    from repro.mapping.folds import FoldPlan

    real = FoldPlan.shape_classes
    return mock.patch.object(
        FoldPlan, "shape_classes", lambda self: real(self)[:-1]
    )


@dataclass(frozen=True)
class Mutant:
    """One seeded defect and the properties expected to kill it."""

    name: str
    install: Callable[[], ContextManager]
    props: Tuple[str, ...]
    doc: str


MUTANTS: Tuple[Mutant, ...] = (
    Mutant(
        "analytical-off-by-one",
        _patch_analytical_off_by_one,
        ("models",),
        "fold_runtime off by +1 breaks Eq. 4 exactness on dividing dims",
    ),
    Mutant(
        "cache-dataflow-blind",
        _patch_cache_dataflow_blind,
        ("cache_identity",),
        "dataflow-blind cache key aliases os/ws/is results",
    ),
    Mutant(
        "remap-off-by-one",
        _patch_remap_off_by_one,
        ("models",),
        "exact cycle prediction drifts -1 from the engine",
    ),
    Mutant(
        "shape-class-drop",
        _patch_shape_class_drop,
        ("shape_classes",),
        "shape-class aggregation drops a fold population",
    ),
)


@dataclass
class MutationReport:
    """Per-mutant kill record for one smoke run."""

    seed: int
    baseline_clean: bool = False
    kills: Dict[str, int] = field(default_factory=dict)
    bundles: Dict[str, List[Path]] = field(default_factory=dict)
    survivors: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.baseline_clean and not self.survivors

    def summary(self) -> str:
        parts = [
            f"baseline {'clean' if self.baseline_clean else 'DIRTY'}",
            f"{len(self.kills)}/{len(self.kills) + len(self.survivors)} mutants killed",
        ]
        if self.survivors:
            parts.append(f"survivors: {', '.join(self.survivors)}")
        return f"mutation smoke seed={self.seed}: " + "; ".join(parts)


def run_mutation_smoke(
    seed: int = 0,
    cases_per_mutant: int = DEFAULT_CASES_PER_MUTANT,
    budget: float = 120.0,
    corpus_dir: Optional[Union[str, Path]] = None,
) -> MutationReport:
    """Kill every registered mutant, or raise :class:`VerificationError`.

    Bundles produced while a mutant is live are written to
    ``corpus_dir`` when given, otherwise to a throwaway directory —
    they describe a *seeded* defect, not a real one, and must never
    land in the permanent regression corpus.
    """
    report = MutationReport(seed=seed)
    targeted = sorted({name for mutant in MUTANTS for name in mutant.props})

    with contextlib.ExitStack() as stack:
        if corpus_dir is None:
            corpus_dir = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-mutation-")
            )

        baseline = run_verify(
            budget=budget,
            seed=seed,
            props=targeted,
            max_cases=cases_per_mutant,
            corpus_dir=None,
            shrink=False,
        )
        report.baseline_clean = baseline.passed
        if not baseline.passed:
            raise VerificationError(
                "mutation smoke is meaningless: the unmutated code already "
                f"fails — {baseline.summary()}"
            )

        for mutant in MUTANTS:
            mutant_corpus = Path(corpus_dir) / mutant.name
            with mutant.install():
                result = run_verify(
                    budget=budget,
                    seed=seed,
                    props=list(mutant.props),
                    max_cases=cases_per_mutant,
                    corpus_dir=mutant_corpus,
                    shrink=True,
                )
            if result.violations:
                report.kills[mutant.name] = len(result.violations)
                report.bundles[mutant.name] = list(result.bundles)
                if metrics.enabled:
                    metrics.counter("verify.mutants_killed").add()
            else:
                report.survivors.append(mutant.name)

    if report.survivors:
        raise VerificationError(
            "mutation smoke FAILED — the harness missed seeded defect(s): "
            + ", ".join(report.survivors)
        )
    return report
