"""Thin client for the simulation daemon (``repro submit``).

Stdlib-only JSON-over-HTTP against either the daemon's localhost TCP
port or its unix domain socket.  Back-pressure is a first-class
outcome: a 429/503 raises
:class:`~repro.errors.ServiceUnavailableError` carrying the server's
``Retry-After`` hint, and :meth:`ServiceClient.submit` can optionally
honour it with a bounded retry loop — the polite client the admission
controller is designed for.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Dict, Optional, Tuple

from repro.errors import ServiceError, ServiceUnavailableError
from repro.obs.service import CORRELATION_HEADER, new_correlation_id

DEFAULT_PORT = 8787


class _UnixHTTPConnection(http.client.HTTPConnection):
    """HTTPConnection whose transport is a unix domain socket."""

    def __init__(self, socket_path: str, timeout: Optional[float] = None):
        super().__init__("localhost", timeout=timeout if timeout is not None else 60.0)
        self.socket_path = socket_path

    def connect(self) -> None:
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            self.sock.settimeout(self.timeout)
        self.sock.connect(self.socket_path)


class ServiceClient:
    """One logical client of a running daemon.

    ``client_id`` feeds the server's per-client quota accounting; give
    each cooperating process its own id so one greedy client cannot
    starve the rest.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        socket_path: Optional[str] = None,
        client_id: str = "anonymous",
        timeout: float = 300.0,
    ):
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.client_id = client_id
        self.timeout = timeout

    def _connection(self) -> http.client.HTTPConnection:
        if self.socket_path:
            return _UnixHTTPConnection(self.socket_path, timeout=self.timeout)
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict] = None,
        correlation_id: Optional[str] = None,
    ) -> Tuple[int, Dict, Dict]:
        """Returns ``(status, headers, parsed_body)``; raises ServiceError
        on transport failures or non-JSON responses."""
        connection = self._connection()
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"X-Repro-Client": self.client_id}
            if correlation_id:
                headers[CORRELATION_HEADER] = correlation_id
            if payload is not None:
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                parsed = json.loads(raw) if raw else {}
            except json.JSONDecodeError as exc:
                raise ServiceError(
                    f"daemon returned non-JSON body for {method} {path}: {exc}"
                ) from exc
            if not isinstance(parsed, dict):
                raise ServiceError(f"daemon returned non-object body for {method} {path}")
            return response.status, dict(response.headers), parsed
        except (OSError, http.client.HTTPException) as exc:
            where = self.socket_path or f"{self.host}:{self.port}"
            raise ServiceError(f"cannot reach daemon at {where}: {exc}") from exc
        finally:
            connection.close()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def health(self) -> Dict:
        status, _headers, body = self._request("GET", "/health")
        if status != 200:
            raise ServiceError(f"health check failed with HTTP {status}: {body}")
        return body

    def metrics_text(self) -> str:
        """The daemon's raw Prometheus exposition (``GET /metrics``)."""
        connection = self._connection()
        try:
            connection.request(
                "GET", "/metrics", headers={"X-Repro-Client": self.client_id}
            )
            response = connection.getresponse()
            raw = response.read()
            if response.status != 200:
                raise ServiceError(f"metrics scrape failed with HTTP {response.status}")
            return raw.decode()
        except (OSError, http.client.HTTPException) as exc:
            where = self.socket_path or f"{self.host}:{self.port}"
            raise ServiceError(f"cannot reach daemon at {where}: {exc}") from exc
        finally:
            connection.close()

    def submit(
        self,
        request: Dict,
        max_retries: int = 0,
        correlation_id: Optional[str] = None,
    ) -> Dict:
        """Submit one job and return its result body.

        On back-pressure (429/503) the call sleeps for the server's
        ``Retry-After`` and retries, at most ``max_retries`` times;
        exhausted retries raise :class:`ServiceUnavailableError`.
        Invalid requests and job failures raise :class:`ServiceError`.

        A correlation ID is minted client-side (unless given) and sent
        in the ``X-Repro-Correlation-Id`` header; retries reuse the
        same ID, so the daemon's logs show one request story.  The ID
        comes back in the response body as ``correlation_id``.
        """
        cid = correlation_id or new_correlation_id()
        attempt = 0
        while True:
            status, headers, body = self._request(
                "POST", "/submit", body=request, correlation_id=cid
            )
            if status == 200:
                return body
            if status in (429, 503):
                retry_after = _retry_after(headers, body)
                if attempt < max_retries:
                    attempt += 1
                    time.sleep(retry_after)
                    continue
                raise ServiceUnavailableError(
                    f"daemon rejected the request ({body.get('error', status)})",
                    retry_after=retry_after,
                )
            raise ServiceError(
                f"job failed with HTTP {status}: {body.get('error', body)}"
            )


def _retry_after(headers: Dict, body: Dict) -> float:
    for source in (headers.get("Retry-After"), body.get("retry_after")):
        try:
            if source is not None:
                return max(0.05, float(source))
        except (TypeError, ValueError):
            continue
    return 1.0
