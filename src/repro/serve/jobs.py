"""Job vocabulary of the simulation service: validate, key, execute.

A *job* is one JSON request a client submits to the daemon (or runs
inline through the same code path).  Three kinds cover the paper's
methodology:

* ``gemm`` — one bare GEMM on one array (``m``/``k``/``n``/``array``/
  ``dataflow``).
* ``run`` — a whole built-in workload or Table IV layer on one config
  (``workload``/``array``/``partitions``/``dataflow``/``batch``).
* ``sweep`` — the Fig. 11 partition sweep for one layer
  (``layer``/``macs``/``partitions``/``workload``).

:func:`normalize_request` canonicalizes a request (defaults filled,
unknown fields rejected) so :func:`job_key` — the ``repro.obs`` config
hash of the canonical form plus the package version — is identical for
semantically identical requests; the daemon's single-flight table and
the result store both dedup on that property.

The execution helpers here are module-level functions so the
supervised pool can pickle them, and the CLI ``sweep`` subcommand
shares :func:`sweep_measure` instead of keeping its own copy.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.config.hardware import Dataflow
from repro.config.presets import paper_scaling_config
from repro.errors import ReproError, ServiceError
from repro.obs.export import config_hash
from repro.utils.mathutils import is_power_of_two
from repro.workloads.language import TABLE_IV_DIMS, language_layer
from repro.workloads.registry import available_workloads, get_workload

JOB_KINDS = ("gemm", "run", "sweep")

#: When set (``repro serve --ledger DIR``), sweep jobs sink their rows
#: into this columnar ledger and reuse completed points across requests.
SWEEP_LEDGER_ENV = "REPRO_SWEEP_LEDGER"

#: Request fields accepted per kind (beyond "kind" itself).
_FIELDS = {
    "gemm": {"m", "k", "n", "array", "dataflow"},
    "run": {"workload", "array", "partitions", "dataflow", "batch"},
    "sweep": {"layer", "workload", "macs", "partitions"},
}


def square_grid(count: int) -> Tuple[int, int]:
    """Most-square power-of-two factorization of ``count``."""
    rows = 1
    while rows * rows < count:
        rows <<= 1
    return (count // rows, rows) if count % rows == 0 else (1, count)


def sweep_ledger_version(layer: str, workload: str, macs: int) -> str:
    """Ledger version string scoping sweep points to one simulation key.

    The sweep grid's per-point parameters are just ``partitions``;
    alone they would collide across layers in a shared ledger, so the
    rest of the simulation key rides in the version string — changing
    the layer, workload, macs budget or package version invalidates
    reuse exactly the way a code upgrade invalidates a checkpoint.
    """
    from repro._version import __version__

    return f"{__version__}/sweep layer={layer} workload={workload} macs={macs}"


def sweep_measure(partitions: int, layer=None, macs: int = 0) -> dict:
    """One partition-sweep point; module-level so worker processes can
    unpickle it (closures cannot cross the process boundary)."""
    from repro.engine.scaleout import ScaleOutSimulator

    grid = square_grid(partitions)
    shape = square_grid(macs // partitions)
    config = paper_scaling_config(shape[0], shape[1], grid[0], grid[1])
    result = ScaleOutSimulator(config).run_layer(layer)
    return {
        "array": f"{shape[0]}x{shape[1]}",
        "cycles": result.total_cycles,
        "avg_bw": round(result.avg_total_bw, 3),
        "peak_bw": round(result.peak_total_bw, 3),
    }


def sweep_estimate(partitions: int, layer=None, macs: int = 0) -> tuple:
    """Closed-form twin of :func:`sweep_measure` for analytical pruning.

    Returns ``(row, score)`` in the :func:`repro.sweep.run_sweep`
    estimator contract.  ``cycles`` and ``avg_bw`` are *exact* — the
    shape-class decomposition prices each of the <= 4 distinct tile
    GEMMs with the closed-form model the tests pin to the engine —
    while ``peak_bw`` reports the summed per-tile average bandwidth (a
    lower bound; the true per-fold peak needs the engine's fold walk).
    The score is the exact cycle count, the same objective
    :func:`sweep_measure` minimizes.
    """
    from repro.analytical.traffic import estimate_traffic
    from repro.mapping.dims import OperandMapping, map_layer
    from repro.memory.buffers import BufferSet
    from repro.utils.mathutils import split_evenly

    grid = square_grid(partitions)
    shape = square_grid(macs // partitions)
    config = paper_scaling_config(shape[0], shape[1], grid[0], grid[1])
    mapping = map_layer(layer, config.dataflow)
    buffers = BufferSet.from_config(config.partition_config())

    shape_counts: Dict[Tuple[int, int], int] = {}
    for r in split_evenly(mapping.sr, grid[0]):
        for c in split_evenly(mapping.sc, grid[1]):
            if r == 0 or c == 0:
                continue
            shape_counts[(r, c)] = shape_counts.get((r, c), 0) + 1
    cycles = 0
    total_bytes = 0
    peak_proxy = 0.0
    for (r, c), count in shape_counts.items():
        tile = OperandMapping(sr=r, sc=c, t=mapping.t, dataflow=mapping.dataflow)
        estimate = estimate_traffic(
            tile, shape[0], shape[1], buffers, config.word_bytes
        )
        cycles = max(cycles, estimate.total_cycles)
        total_bytes += estimate.total_bytes * count
        peak_proxy += estimate.avg_total_bw * count
    row = {
        "array": f"{shape[0]}x{shape[1]}",
        "cycles": cycles,
        "avg_bw": round(total_bytes / cycles, 3),
        "peak_bw": round(peak_proxy, 3),
    }
    return row, float(cycles)


def _parse_shape(text: object, field: str) -> Tuple[int, int]:
    try:
        rows_text, cols_text = str(text).lower().split("x")
        rows, cols = int(rows_text), int(cols_text)
    except ValueError:
        raise ServiceError(f"invalid {field} {text!r}; expected e.g. 32x32") from None
    if rows < 1 or cols < 1:
        raise ServiceError(f"{field} dimensions must be positive, got {text!r}")
    return rows, cols


def _require_int(request: Dict, field: str, minimum: int = 1) -> int:
    value = request.get(field)
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise ServiceError(f"{field} must be an integer >= {minimum}, got {value!r}")
    return value


def _resolve_layer(name: str, workload: str):
    if name in TABLE_IV_DIMS:
        return language_layer(name)
    network = get_workload(workload)
    if name not in network:
        raise ServiceError(f"unknown layer {name!r} in workload {workload!r}")
    return network[name]


def normalize_request(payload: object) -> Dict:
    """Canonical form of one job request; raises ServiceError if invalid."""
    if not isinstance(payload, dict):
        raise ServiceError(f"request must be a JSON object, got {type(payload).__name__}")
    kind = payload.get("kind")
    if kind not in JOB_KINDS:
        raise ServiceError(f"unknown job kind {kind!r}; expected one of {JOB_KINDS}")
    unknown = set(payload) - _FIELDS[kind] - {"kind"}
    if unknown:
        raise ServiceError(f"unknown field(s) for {kind} job: {sorted(unknown)}")

    request: Dict = {"kind": kind}
    dataflow = payload.get("dataflow", "os")
    try:
        request["dataflow"] = Dataflow.from_string(dataflow).value
    except ReproError as exc:
        raise ServiceError(str(exc)) from exc

    if kind == "gemm":
        for field in ("m", "k", "n"):
            request[field] = _require_int(payload, field)
        rows, cols = _parse_shape(payload.get("array", "32x32"), "array")
        request["array"] = f"{rows}x{cols}"
    elif kind == "run":
        workload = payload.get("workload")
        if workload not in available_workloads() and workload not in TABLE_IV_DIMS:
            raise ServiceError(
                f"unknown workload {workload!r}; "
                f"available: {available_workloads()} + Table IV layers"
            )
        request["workload"] = workload
        rows, cols = _parse_shape(payload.get("array", "32x32"), "array")
        request["array"] = f"{rows}x{cols}"
        if payload.get("partitions") is not None:
            prows, pcols = _parse_shape(payload["partitions"], "partitions")
            request["partitions"] = f"{prows}x{pcols}"
        if payload.get("batch") is not None:
            request["batch"] = _require_int(payload, "batch")
    else:  # sweep
        layer = payload.get("layer")
        if not isinstance(layer, str) or not layer:
            raise ServiceError("sweep jobs need a layer name")
        request["layer"] = layer
        request["workload"] = payload.get("workload") or "resnet50"
        macs = _require_int(payload, "macs")
        if not is_power_of_two(macs):
            raise ServiceError(f"macs must be a power of two, got {macs}")
        request["macs"] = macs
        partitions = payload.get("partitions")
        if partitions is None:
            partitions = [4**i for i in range(8) if 4**i * 64 <= macs]
        if not isinstance(partitions, (list, tuple)) or not partitions:
            raise ServiceError("partitions must be a non-empty list of counts")
        counts = []
        for count in partitions:
            if not isinstance(count, int) or isinstance(count, bool) or count < 1:
                raise ServiceError(f"invalid partition count {count!r}")
            if macs % count == 0 and is_power_of_two(macs // count):
                counts.append(count)
        if not counts:
            raise ServiceError(
                f"no partition count in {list(partitions)} divides {macs} "
                "into a power-of-two array"
            )
        request["partitions"] = sorted(set(counts))
        # Resolve eagerly so bad layer names fail at admission, not execution.
        _resolve_layer(layer, request["workload"])
    return request


def job_key(request: Dict) -> str:
    """Content-address one canonical request (version-stamped)."""
    from repro._version import __version__

    return config_hash({"job": request, "version": __version__})


def execute_job(request: Dict) -> Dict:
    """Run one canonical job and return its JSON-safe result body."""
    kind = request["kind"]
    if kind == "gemm":
        return _execute_gemm(request)
    if kind == "run":
        return _execute_run(request)
    return _execute_sweep(request)


def _config_for(request: Dict):
    rows, cols = _parse_shape(request["array"], "array")
    config = paper_scaling_config(rows, cols)
    if request.get("partitions"):
        prows, pcols = _parse_shape(request["partitions"], "partitions")
        config = config.with_partitions(prows, pcols)
    return config.with_dataflow(Dataflow.from_string(request["dataflow"]))


def _execute_gemm(request: Dict) -> Dict:
    from repro.engine.simulator import Simulator

    config = _config_for(request)
    result = Simulator(config).run_gemm(request["m"], request["k"], request["n"])
    return {"rows": [result.as_row()], "total_cycles": result.total_cycles}


def _execute_run(request: Dict) -> Dict:
    from repro.engine.scaleout import ScaleOutSimulator
    from repro.engine.simulator import Simulator
    from repro.topology.network import Network

    name = request["workload"]
    if name in TABLE_IV_DIMS:
        network = Network(name, [language_layer(name)])
    else:
        network = get_workload(name)
    if request.get("batch", 1) > 1:
        network = network.with_batch(request["batch"])
    config = _config_for(request)
    if config.is_monolithic:
        result = Simulator(config).run_network(network)
    else:
        result = ScaleOutSimulator(config).run_network(network)
    return {
        "rows": [layer.as_row() for layer in result],
        "total_cycles": result.total_cycles,
        "config": config.describe(),
    }


def _execute_sweep(request: Dict) -> Dict:
    import functools
    import os

    from repro.sweep import run_sweep_report

    layer = _resolve_layer(request["layer"], request["workload"])
    measure = functools.partial(sweep_measure, layer=layer, macs=request["macs"])
    counts = list(request["partitions"])
    ledger_dir = os.environ.get(SWEEP_LEDGER_ENV)
    if not ledger_dir:
        rows, report = run_sweep_report(measure, partitions=counts)
        return {"rows": rows, "points": len(report.records)}

    from repro.store.ledger import SweepLedger

    # Each job opens (and closes) the ledger: the daemon serializes
    # sweep execution per key via single-flight, and reopening keeps
    # the job layer crash-isolated from long-lived daemon state.
    version = sweep_ledger_version(
        request["layer"], request["workload"], request["macs"]
    )
    with SweepLedger(ledger_dir, version=version) as ledger:
        diff = ledger.diff_grid([{"partitions": count} for count in counts])
        rows, report = run_sweep_report(
            measure,
            ledger=ledger,
            incremental=True,
            partitions=counts,
        )
    return {
        "rows": rows,
        "points": len(report.records),
        "ledger": {"reused": len(diff.reused), "simulated": len(diff.pending)},
    }
