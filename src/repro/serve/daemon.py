"""Long-lived simulation daemon: admission control, single-flight, drain.

:class:`SimulationService` is the transport-independent core — a
bounded job table in front of a thread pool — and the HTTP layer
(:func:`make_server`) exposes it as JSON over localhost TCP or a unix
domain socket, stdlib only.

Admission control (the "stays up under abuse" contract):

* **Bounded queue.**  At most ``workers + max_queue`` distinct jobs may
  be admitted at once; past that a request is rejected with HTTP 429
  and a ``Retry-After`` header instead of growing memory without bound.
* **Per-client quotas.**  Each client (``X-Repro-Client`` header, or
  ``"anonymous"``) may have ``client_quota`` requests in flight;
  excess requests get 429 without consuming queue slots.
* **Single-flight dedup.**  Requests are keyed by
  :func:`repro.serve.jobs.job_key`; a request identical to one already
  in flight *joins* it — one execution, N responses — so a thundering
  herd of identical sweeps costs one simulation.  Completed results
  persist in the shared result store, so even non-overlapping repeats
  hit disk instead of the simulator.
* **Request timeouts.**  Jobs execute through
  :func:`repro.robust.executor.execute_point` under an
  :class:`~repro.robust.policy.ExecutionPolicy` wall-clock budget; a
  runaway job yields a 500 for its waiters, never a wedged daemon.
* **Graceful degradation.**  Store corruption or a full disk flips the
  result store to compute-only mode (see
  :mod:`repro.store.result_store`); the daemon keeps serving and
  ``/health`` reports the degradation.
* **Graceful shutdown.**  SIGTERM/SIGINT stop admission (503 for new
  requests), drain in-flight jobs up to ``drain_timeout`` seconds, then
  exit cleanly — mirroring the supervised pool's sweep drain.

Endpoints::

    POST /submit   body = job request JSON       -> job result
    GET  /health   pool + store + quota snapshot -> 200 always
"""

from __future__ import annotations

import concurrent.futures
import json
import logging
import os
import socket
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro._version import __version__
from repro.errors import ServiceError
from repro.obs import metrics, trace
from repro.obs.service import (
    CORRELATION_HEADER,
    CORRELATION_KEY,
    new_correlation_id,
    prometheus_text,
)
from repro.robust.executor import execute_point
from repro.robust.policy import ExecutionPolicy
from repro.serve.jobs import execute_job, job_key, normalize_request
from repro.store import runtime as store_runtime

logger = logging.getLogger("repro.serve")

#: Client id used when a request does not identify itself.
ANONYMOUS = "anonymous"


@dataclass(frozen=True)
class ServicePolicy:
    """Admission-control envelope of one daemon instance.

    ``workers`` job threads execute concurrently; up to ``max_queue``
    more jobs may wait.  ``client_quota`` bounds any one client's
    in-flight requests (joins included).  ``request_timeout`` is the
    per-job wall-clock budget (``None`` = unbounded), enforced through
    the same :class:`ExecutionPolicy` machinery as sweep points.
    ``retry_after`` seeds the ``Retry-After`` header on 429/503.
    """

    workers: int = 2
    max_queue: int = 8
    client_quota: int = 4
    request_timeout: Optional[float] = None
    retry_after: float = 1.0
    drain_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue}")
        if self.client_quota < 1:
            raise ValueError(f"client_quota must be >= 1, got {self.client_quota}")
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ValueError(f"request_timeout must be > 0, got {self.request_timeout}")
        if self.retry_after <= 0:
            raise ValueError(f"retry_after must be > 0, got {self.retry_after}")
        if self.drain_timeout < 0:
            raise ValueError(f"drain_timeout must be >= 0, got {self.drain_timeout}")

    @property
    def admission_limit(self) -> int:
        """Distinct jobs that may be admitted at once (running + queued)."""
        return self.workers + self.max_queue


class _Job:
    """One in-flight execution plus everyone waiting on it."""

    __slots__ = ("key", "request", "future", "waiters", "submitted_unix")

    def __init__(self, key: str, request: Dict, future: concurrent.futures.Future):
        self.key = key
        self.request = request
        self.future = future
        self.waiters = 1
        self.submitted_unix = time.time()


class SimulationService:
    """Transport-independent daemon core; see the module docstring."""

    def __init__(self, policy: Optional[ServicePolicy] = None):
        self.policy = policy or ServicePolicy()
        self.started_unix = time.time()
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.policy.workers, thread_name_prefix="repro-serve"
        )
        self._exec_policy = ExecutionPolicy(timeout=self.policy.request_timeout)
        self._lock = threading.Lock()
        self._jobs: Dict[str, _Job] = {}
        self._inflight_clients: Dict[str, int] = {}
        self._draining = False
        self._counts = {
            "requests": 0, "executed": 0, "singleflight_joined": 0,
            "rejected_queue": 0, "rejected_quota": 0, "rejected_draining": 0,
            "bad_requests": 0, "failures": 0, "completed": 0,
        }

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            self._counts[name] += delta
        if metrics.enabled:
            metrics.counter(f"serve.{name}").add(delta)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        payload: object,
        client: str = ANONYMOUS,
        correlation_id: Optional[str] = None,
    ) -> Tuple[int, Dict]:
        """Admit, dedup and execute one request; block until its result.

        Returns ``(http_status, response_body)``.  Never raises for
        request-level problems — admission failures and job failures
        are structured responses.

        ``correlation_id`` is the client-minted request ID (from the
        ``X-Repro-Correlation-Id`` header); one is minted at ingress if
        absent.  It is bound into the tracer's thread-local context for
        the whole request, stamped on the job thread too, and echoed in
        the response body — one ID stitches the request's queue-wait,
        execution and store segments across every thread that touched it.
        """
        cid = correlation_id or new_correlation_id()
        with trace.bound(**{CORRELATION_KEY: cid}):
            with trace.span("serve.request", category="serve") as span:
                status, body = self._submit(payload, client or ANONYMOUS, cid)
                span.set(status=status)
        body.setdefault("correlation_id", cid)
        return status, body

    def _submit(self, payload: object, client: str, cid: str) -> Tuple[int, Dict]:
        self._count("requests")
        try:
            request = normalize_request(payload)
        except ServiceError as exc:
            self._count("bad_requests")
            return 400, {"status": "invalid", "error": str(exc)}

        joined = False
        with self._lock:
            if self._draining:
                return self._locked_reject(
                    503, "service is draining for shutdown", "rejected_draining"
                )
            if self._inflight_clients.get(client, 0) >= self.policy.client_quota:
                return self._locked_reject(
                    429,
                    f"client {client!r} has {self.policy.client_quota} "
                    "request(s) in flight (quota)",
                    "rejected_quota",
                )
            key = job_key(request)
            job = self._jobs.get(key)
            if job is not None:
                job.waiters += 1
                joined = True
            else:
                if len(self._jobs) >= self.policy.admission_limit:
                    return self._locked_reject(
                        429,
                        f"job queue is full ({self.policy.admission_limit} "
                        "in flight)",
                        "rejected_queue",
                    )
                future = self._pool.submit(
                    self._run_job, key, request, cid, trace.now_ns()
                )
                job = _Job(key, request, future)
                self._jobs[key] = job
            self._inflight_clients[client] = self._inflight_clients.get(client, 0) + 1
        if joined:
            self._count("singleflight_joined")
            logger.info(
                "cid=%s joined in-flight job %s (%s, client=%s)",
                cid, job.key[:12], request["kind"], client,
            )
        else:
            logger.info(
                "cid=%s admitted job %s (%s, client=%s)",
                cid, job.key[:12], request["kind"], client,
            )
        try:
            record = job.future.result()
        except (concurrent.futures.CancelledError, RuntimeError) as exc:
            # The pool shut down under this waiter (drain timeout hit).
            self._count("failures")
            return 503, {
                "status": "rejected",
                "error": f"job abandoned during shutdown: {exc}",
                "retry_after": self.policy.retry_after,
            }
        finally:
            with self._lock:
                remaining = self._inflight_clients.get(client, 1) - 1
                if remaining > 0:
                    self._inflight_clients[client] = remaining
                else:
                    self._inflight_clients.pop(client, None)
        if record.status != "ok":
            self._count("failures")
            return 500, {
                "status": "error",
                "key": job.key,
                "error": record.error,
                "attempts": record.attempts,
            }
        body = dict(record.rows[0])
        self._count("completed")
        return 200, {
            "status": "ok",
            "key": job.key,
            "kind": request["kind"],
            "singleflight": joined,
            "duration": record.duration,
            **body,
        }

    def _locked_reject(self, status: int, reason: str, counter: str) -> Tuple[int, Dict]:
        """Reject while already holding the lock (no metrics deadlock)."""
        self._counts[counter] += 1
        if metrics.enabled:
            metrics.counter(f"serve.{counter}").add()
        logger.info("rejected request: %s", reason)
        return status, {
            "status": "rejected",
            "error": reason,
            "retry_after": self.policy.retry_after,
        }

    def _run_job(self, key: str, request: Dict, cid: str, enqueue_ns: int):
        """Job-thread body: run one job under the execution policy.

        Rebinds the request's correlation ID on the (pooled, reused)
        job thread, synthesizes the queue-wait segment from the
        enqueue timestamp, and times the execution into the per-kind
        latency histogram.
        """
        self._count("executed")
        kind = request["kind"]
        trace.bind(**{CORRELATION_KEY: cid})
        try:
            wait_ns = max(0, trace.now_ns() - enqueue_ns)
            trace.add_span(
                "serve.queue_wait", enqueue_ns, wait_ns, category="serve", kind=kind
            )
            if metrics.enabled:
                metrics.histogram("serve.queue_wait_seconds").observe(wait_ns / 1e9)
            start = time.perf_counter()
            with trace.span("serve.execute", category="serve", kind=kind, key=key):
                record = execute_point(
                    execute_job, {"request": request}, policy=self._exec_policy, key=key
                )
            if metrics.enabled:
                metrics.histogram('serve.job_seconds{kind="%s"}' % kind).observe(
                    time.perf_counter() - start
                )
            logger.info(
                "cid=%s job %s finished (%s, status=%s, %.3fs)",
                cid, key[:12], kind, record.status, time.perf_counter() - start,
            )
            return record
        finally:
            trace.unbind(CORRELATION_KEY)
            with self._lock:
                self._jobs.pop(key, None)

    # ------------------------------------------------------------------
    # Health & shutdown
    # ------------------------------------------------------------------
    def health(self) -> Dict:
        store = store_runtime.active()
        with self._lock:
            jobs = len(self._jobs)
            clients = dict(self._inflight_clients)
            counts = dict(self._counts)
            draining = self._draining
        degraded = bool(store is not None and store.degraded_reason)
        return {
            "status": "draining" if draining else "degraded" if degraded else "ok",
            "version": __version__,
            "pid": os.getpid(),
            "uptime": time.time() - self.started_unix,
            "degraded_store": degraded,
            "policy": {
                "workers": self.policy.workers,
                "max_queue": self.policy.max_queue,
                "client_quota": self.policy.client_quota,
                "request_timeout": self.policy.request_timeout,
            },
            "jobs_in_flight": jobs,
            "clients_in_flight": clients,
            "counters": counts,
            "store": store.status() if store is not None else None,
        }

    def metrics_text(self) -> str:
        """The Prometheus exposition for ``GET /metrics``.

        Merges the admission counters (authoritative here even when the
        shared registry is disabled) and runtime gauges over the
        registry snapshot; identical raw names dedup, so the mirrored
        ``serve.*`` counters never export twice.
        """
        store = store_runtime.active()
        with self._lock:
            counts = dict(self._counts)
            jobs = len(self._jobs)
            clients = len(self._inflight_clients)
            draining = self._draining
        extra_counters = {f"serve.{name}": value for name, value in counts.items()}
        extra_gauges = {
            "uptime_seconds": time.time() - self.started_unix,
            "serve.jobs_in_flight": jobs,
            "serve.queue_depth": max(0, jobs - self.policy.workers),
            "serve.clients_in_flight": clients,
            "serve.draining": 1 if draining else 0,
            'build_info{version="%s"}' % __version__: 1,
        }
        if store is not None:
            extra_gauges["store.degraded"] = 1 if store.degraded_reason else 0
        return prometheus_text(
            metrics, extra_counters=extra_counters, extra_gauges=extra_gauges
        )

    def drain(self, timeout: Optional[float] = None) -> int:
        """Stop admitting, wait for in-flight jobs, shut the pool down.

        Returns the number of jobs that were still in flight when the
        drain began.  Jobs not finished within ``timeout`` seconds are
        abandoned (their waiters see the pool shutdown error).
        """
        budget = self.policy.drain_timeout if timeout is None else timeout
        with self._lock:
            self._draining = True
            pending = list(self._jobs.values())
        if pending:
            logger.info("draining %d in-flight job(s)", len(pending))
        deadline = time.monotonic() + budget
        for job in pending:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                job.future.result(timeout=remaining)
            except concurrent.futures.TimeoutError:
                logger.warning("job %s did not drain within %.1fs", job.key, budget)
            except Exception:  # noqa: BLE001 - failures already recorded
                pass
        self._pool.shutdown(wait=False, cancel_futures=True)
        if metrics.enabled:
            metrics.counter("serve.drains").add()
        return len(pending)


# ----------------------------------------------------------------------
# HTTP transport (stdlib only)
# ----------------------------------------------------------------------

MAX_BODY_BYTES = 1 << 20  # a request is a small JSON document


class _Handler(BaseHTTPRequestHandler):
    service: SimulationService  # injected by make_server
    protocol_version = "HTTP/1.1"

    # BaseHTTPRequestHandler logs to stderr by default; route to logging.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("http %s", format % args)

    def _send_json(
        self, status: int, body: Dict, headers: Optional[Dict[str, str]] = None
    ) -> None:
        data = (json.dumps(body, default=repr) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if status in (429, 503):
            self.send_header("Retry-After", str(body.get("retry_after", 1)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client gave up while we simulated; nothing to do

    def _send_metrics(self) -> None:
        data = self.service.metrics_text().encode()
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        try:
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?")[0]
        if path in ("/health", "/"):
            self._send_json(200, self.service.health())
        elif path == "/metrics":
            self._send_metrics()
        else:
            self._send_json(404, {"status": "invalid", "error": f"no route {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path.split("?")[0] != "/submit":
            self._send_json(404, {"status": "invalid", "error": f"no route {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._send_json(
                413, {"status": "invalid", "error": f"body must be 0..{MAX_BODY_BYTES} bytes"}
            )
            return
        try:
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._send_json(400, {"status": "invalid", "error": f"bad JSON body: {exc}"})
            return
        client = self.headers.get("X-Repro-Client", ANONYMOUS)
        cid = (self.headers.get(CORRELATION_HEADER) or "").strip() or None
        status, body = self.service.submit(payload, client=client, correlation_id=cid)
        echo = body.get("correlation_id")
        self._send_json(
            status, body, headers={CORRELATION_HEADER: echo} if echo else None
        )


class ReproHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class UnixHTTPServer(ReproHTTPServer):
    """HTTP over a unix domain socket (same wire format, no TCP port)."""

    address_family = socket.AF_UNIX

    def server_bind(self) -> None:
        path = self.server_address
        if isinstance(path, (str, os.PathLike)) and os.path.exists(path):
            os.unlink(path)  # stale socket from a previous daemon
        super().server_bind()

    # http.server expects (host, port) tuples in a few log paths.
    def server_close(self) -> None:
        super().server_close()
        path = self.server_address
        if isinstance(path, (str, os.PathLike)):
            try:
                os.unlink(path)
            except OSError:
                pass


def make_server(
    service: SimulationService,
    host: str = "127.0.0.1",
    port: int = 8787,
    socket_path: Optional[str] = None,
) -> ReproHTTPServer:
    """Bind the HTTP front door (TCP by default, unix socket if given)."""
    handler = type("BoundHandler", (_Handler,), {"service": service})
    try:
        if socket_path:
            return UnixHTTPServer(socket_path, handler)
        return ReproHTTPServer((host, port), handler)
    except OSError as exc:
        where = socket_path or f"{host}:{port}"
        raise ServiceError(f"cannot bind daemon to {where}: {exc}") from exc


def serve_until_signalled(
    server: ReproHTTPServer,
    service: SimulationService,
) -> int:
    """Run the accept loop until ``server.shutdown()``; drain and return.

    The caller installs SIGTERM/SIGINT handlers that call
    ``server.shutdown()`` from a helper thread, which unblocks
    ``serve_forever``; this keeps the function test-drivable without
    touching process-global signal state.
    """
    where = server.server_address
    logger.info("repro daemon listening on %s (pid %d)", where, os.getpid())
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
        drained = service.drain()
        logger.info("daemon shut down cleanly (%d job(s) drained)", drained)
    return 0
