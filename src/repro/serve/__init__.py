"""Simulation-as-a-service (``repro.serve``).

A long-lived daemon wrapping the simulator behind JSON over localhost
HTTP or a unix socket, with admission control (bounded queue + 429
back-pressure, per-client quotas), single-flight dedup of identical
in-flight requests, the shared :mod:`repro.store` result store, and a
SIGTERM drain mirroring the supervised pool's.  See
:mod:`repro.serve.daemon` for the protocol and docs/service.md for the
operator guide.
"""

from repro.serve.client import DEFAULT_PORT, ServiceClient
from repro.serve.daemon import (
    ReproHTTPServer,
    ServicePolicy,
    SimulationService,
    UnixHTTPServer,
    make_server,
    serve_until_signalled,
)
from repro.serve.jobs import JOB_KINDS, execute_job, job_key, normalize_request

__all__ = [
    "DEFAULT_PORT",
    "JOB_KINDS",
    "ReproHTTPServer",
    "ServiceClient",
    "ServicePolicy",
    "SimulationService",
    "UnixHTTPServer",
    "execute_job",
    "job_key",
    "make_server",
    "normalize_request",
    "serve_until_signalled",
]
