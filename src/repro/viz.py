"""Terminal visualization helpers: bars and sparklines.

The CLI and examples render sweep results as text; these helpers keep
that rendering consistent and tested.  Pure functions of their inputs —
no terminal state, no color codes.
"""

from __future__ import annotations

from typing import List, Sequence

_SPARK_LEVELS = " .:-=+*#%@"


def bar(value: float, maximum: float, width: int = 40) -> str:
    """A single horizontal bar scaled so ``maximum`` fills ``width``."""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if maximum < 0 or value < 0:
        raise ValueError("bar values must be non-negative")
    if maximum == 0:
        return ""
    cells = round(width * min(value, maximum) / maximum)
    return "#" * cells


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    show_values: bool = True,
) -> str:
    """An aligned horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError(
            f"labels ({len(labels)}) and values ({len(values)}) disagree"
        )
    if not labels:
        raise ValueError("empty chart")
    maximum = max(values)
    label_width = max(len(str(label)) for label in labels)
    rows: List[str] = []
    for label, value in zip(labels, values):
        suffix = f"  {value:g}" if show_values else ""
        rows.append(
            f"{str(label).rjust(label_width)} |{bar(value, maximum, width).ljust(width)}{suffix}"
        )
    return "\n".join(rows)


def sparkline(values: Sequence[float]) -> str:
    """A one-line intensity strip of the series (min..max normalized)."""
    if not values:
        raise ValueError("empty sparkline")
    lo, hi = min(values), max(values)
    if any(v < 0 for v in values):
        raise ValueError("sparkline values must be non-negative")
    if hi == lo:
        return _SPARK_LEVELS[len(_SPARK_LEVELS) // 2] * len(values)
    span = hi - lo
    chars = []
    for value in values:
        index = int((value - lo) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[index])
    return "".join(chars)


def trend_table(
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """A compact aligned table (no external deps, fixed-width font)."""
    if not rows:
        raise ValueError("empty table")
    if any(len(row) != len(header) for row in rows):
        raise ValueError("row width disagrees with header")
    cells = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(header[i])), max(len(row[i]) for row in cells))
        for i in range(len(header))
    ]
    lines = [
        "  ".join(str(header[i]).ljust(widths[i]) for i in range(len(header))),
        "  ".join("-" * widths[i] for i in range(len(header))),
    ]
    lines.extend(
        "  ".join(row[i].ljust(widths[i]) for i in range(len(header))) for row in cells
    )
    return "\n".join(lines)
