"""Event-count energy model (paper Sec. IV-A, Fig. 12)."""

from repro.energy.params import EnergyParams, DEFAULT_ENERGY
from repro.energy.model import EnergyBreakdown, energy_of_result, energy_of_run

__all__ = [
    "EnergyParams",
    "DEFAULT_ENERGY",
    "EnergyBreakdown",
    "energy_of_result",
    "energy_of_run",
]
