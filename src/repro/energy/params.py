"""Energy cost parameters.

Per the paper, "the energy consumption directly depends on the cycles
MAC units have been active and the number of accesses to SRAM and
DRAM."  We model four event classes with relative costs (units are
arbitrary; only ratios matter for the trends):

* ``mac``        — one useful multiply-accumulate.
* ``sram_access``— one SRAM word read or written.
* ``dram_access``— one DRAM word moved across the interface.
* ``pe_idle``    — one PE powered for one cycle (clock/leakage): this
  is the "powering the massive compute array" term whose savings make
  scale-out energy-competitive at large MAC budgets.

The default 1 : 6 : 200 MAC/SRAM/DRAM ratio follows the widely used
45nm numbers popularized by the Eyeriss line of work; the idle cost is
a tenth of a MAC.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyParams:
    """Relative per-event energies; all must be non-negative."""

    mac: float = 1.0
    sram_access: float = 6.0
    dram_access: float = 200.0
    pe_idle: float = 0.1

    def __post_init__(self) -> None:
        for name in ("mac", "sram_access", "dram_access", "pe_idle"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(f"{name} must be a non-negative number, got {value!r}")


#: Default parameter set used across the benchmarks.
DEFAULT_ENERGY = EnergyParams()
