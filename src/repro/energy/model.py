"""Turn simulator results into energy estimates.

The model is a pure function of event counts the cycle-accurate engine
already produces:

``E = mac * MACs
    + sram_access * (SRAM reads + writes)
    + dram_access * (DRAM words moved)
    + pe_idle * (total PEs x runtime - MACs)``

The idle term charges every provisioned-but-not-computing PE-cycle;
useful MAC cycles are excluded so the mac and idle terms never double
count.  Runtime here is the *system* runtime (max over partitions for
scale-out), so idle energy covers partitions waiting for the slowest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.params import DEFAULT_ENERGY, EnergyParams
from repro.engine.results import LayerResult, RunResult


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy by component, in the arbitrary units of the parameters.

    ``noc`` is the on-chip transport term for scale-out grids; it stays
    zero unless added via :meth:`with_noc` (see :mod:`repro.noc`).
    """

    mac: float
    sram: float
    dram: float
    idle: float
    noc: float = 0.0

    @property
    def total(self) -> float:
        return self.mac + self.sram + self.dram + self.idle + self.noc

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            mac=self.mac + other.mac,
            sram=self.sram + other.sram,
            dram=self.dram + other.dram,
            idle=self.idle + other.idle,
            noc=self.noc + other.noc,
        )

    def with_noc(self, noc_energy: float) -> "EnergyBreakdown":
        """Return a copy with the NoC transport term set."""
        if noc_energy < 0:
            raise ValueError(f"noc_energy must be non-negative, got {noc_energy}")
        return EnergyBreakdown(
            mac=self.mac, sram=self.sram, dram=self.dram, idle=self.idle,
            noc=noc_energy,
        )


def energy_of_result(
    result: LayerResult,
    params: EnergyParams = DEFAULT_ENERGY,
) -> EnergyBreakdown:
    """Energy of one layer result (scale-up or scale-out).

    Dead partitions are power-gated: the idle term charges surviving
    PEs only (``surviving_pes == total_pes`` on healthy hardware).
    """
    pe_cycles = result.surviving_pes * result.total_cycles
    idle_cycles = max(0, pe_cycles - result.macs)
    dram_words = (result.dram_read_bytes + result.dram_write_bytes) / result.word_bytes
    return EnergyBreakdown(
        mac=params.mac * result.macs,
        sram=params.sram_access * result.sram.total,
        dram=params.dram_access * dram_words,
        idle=params.pe_idle * idle_cycles,
    )


def energy_of_run(
    run: RunResult,
    params: EnergyParams = DEFAULT_ENERGY,
) -> EnergyBreakdown:
    """Energy of a whole network run: layers execute serially, so sums add."""
    total = EnergyBreakdown(mac=0.0, sram=0.0, dram=0.0, idle=0.0)
    for layer in run:
        total = total + energy_of_result(layer, params)
    return total
