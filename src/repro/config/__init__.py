"""Hardware configuration (paper Table I): array shape, SRAM sizes, dataflow."""

from repro.config.hardware import Dataflow, HardwareConfig
from repro.config.parser import load_config, dump_config, parse_config_text
from repro.config.presets import (
    EYERISS_LIKE,
    GOOGLE_TPU_LIKE,
    PAPER_SCALING_SRAM_KB,
    SMALL_TEST,
    paper_scaling_config,
    preset,
    preset_names,
)

__all__ = [
    "Dataflow",
    "HardwareConfig",
    "load_config",
    "dump_config",
    "parse_config_text",
    "EYERISS_LIKE",
    "GOOGLE_TPU_LIKE",
    "PAPER_SCALING_SRAM_KB",
    "SMALL_TEST",
    "paper_scaling_config",
    "preset",
    "preset_names",
]
