"""Read and write SCALE-Sim style configuration files.

The on-disk format follows the original tool: an INI file with
``[general]``, ``[architecture_presets]`` and ``[run_presets]`` sections
holding the Table I keys.  Unknown keys raise :class:`ConfigError` so a
typo never silently falls back to a default.
"""

from __future__ import annotations

import configparser
from pathlib import Path
from typing import Dict, Union

from repro.config.hardware import Dataflow, HardwareConfig
from repro.errors import ConfigError

_INT_KEYS = {
    "arrayheight": "array_rows",
    "arraywidth": "array_cols",
    "ifmapsramsz": "ifmap_sram_kb",
    "filtersramsz": "filter_sram_kb",
    "ofmapsramsz": "ofmap_sram_kb",
    "ifmapoffset": "ifmap_offset",
    "filteroffset": "filter_offset",
    "ofmapoffset": "ofmap_offset",
    "partitionrows": "partition_rows",
    "partitioncols": "partition_cols",
    "wordbytes": "word_bytes",
}
_STR_KEYS = {
    "dataflow": "dataflow",
    "runname": "run_name",
    "run_name": "run_name",
    "faultmap": "fault_map",
    "topology": None,  # accepted for compatibility; handled by the CLI
}

#: Any Table I integer past this is file corruption, not hardware.
MAX_INT_VALUE = 2**31 - 1


def _line_of(text: str, raw_key: str) -> str:
    """Locate ``raw_key`` in the raw INI text for a line-numbered error."""
    needle = raw_key.strip().lower()
    for line_no, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip().lower()
        if stripped.startswith(needle):
            rest = stripped[len(needle):].lstrip()
            if rest.startswith("=") or rest.startswith(":"):
                return f"config line {line_no}: "
    return ""


def parse_config_text(text: str) -> HardwareConfig:
    """Parse configuration file contents into a :class:`HardwareConfig`."""
    parser = configparser.ConfigParser()
    try:
        parser.read_string(text)
    except configparser.Error as exc:
        raise ConfigError(f"malformed config file: {exc}") from exc

    values: Dict[str, object] = {}
    for section in parser.sections():
        for raw_key, raw_value in parser.items(section):
            key = raw_key.strip().lower()
            if key in _INT_KEYS:
                try:
                    parsed = int(raw_value)
                except ValueError as exc:
                    raise ConfigError(
                        f"{_line_of(text, raw_key)}config key {raw_key!r} must "
                        f"be an integer, got {raw_value!r}"
                    ) from exc
                if parsed > MAX_INT_VALUE:
                    raise ConfigError(
                        f"{_line_of(text, raw_key)}config key {raw_key!r} is "
                        f"absurdly large ({parsed} > {MAX_INT_VALUE}); "
                        f"refusing to build this configuration"
                    )
                values[_INT_KEYS[key]] = parsed
            elif key in _STR_KEYS:
                field = _STR_KEYS[key]
                if field == "dataflow":
                    values[field] = Dataflow.from_string(raw_value)
                elif field == "fault_map":
                    from repro.resilience.faultmap import FaultMap

                    values[field] = FaultMap.from_spec(raw_value)
                elif field is not None:
                    values[field] = raw_value.strip()
            else:
                raise ConfigError(f"unknown config key {raw_key!r} in section [{section}]")
    rows = values.get("array_rows", 0)
    cols = values.get("array_cols", 0)
    if isinstance(rows, int) and isinstance(cols, int) and rows * cols > MAX_INT_VALUE:
        raise ConfigError(
            f"array {rows}x{cols} has an absurd PE count "
            f"({rows * cols} > {MAX_INT_VALUE}); refusing to build it"
        )
    try:
        return HardwareConfig(**values)
    except ValueError as exc:
        raise ConfigError(str(exc)) from exc


def load_config(path: Union[str, Path]) -> HardwareConfig:
    """Load a :class:`HardwareConfig` from an INI file on disk."""
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"config file not found: {path}")
    return parse_config_text(path.read_text())


def dump_config(config: HardwareConfig, path: Union[str, Path]) -> Path:
    """Write ``config`` to ``path`` in the INI format and return the path."""
    path = Path(path)
    lines = ["[general]", f"run_name = {config.run_name}", "", "[architecture_presets]"]
    for key, value in config.as_dict().items():
        if key == "RunName":
            continue
        lines.append(f"{key} = {value}")
    path.write_text("\n".join(lines) + "\n")
    return path
