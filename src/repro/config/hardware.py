"""Hardware configuration for a systolic-array accelerator.

This mirrors SCALE-Sim's configuration file (paper Table I): the array
dimensions, the three double-buffered SRAM sizes (IFMAP, filter, OFMAP),
the address offsets used when emitting traces, and the dataflow.

The configuration also carries the parameters the scaling study adds on
top of plain SCALE-Sim: the partition grid for scale-out runs and the
operand word size used to convert element counts into bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.utils.validation import check_positive_int, check_non_negative_int

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.resilience.faultmap import FaultMap


class Dataflow(enum.Enum):
    """The three true systolic dataflows modelled by the paper (Fig. 3)."""

    OUTPUT_STATIONARY = "os"
    WEIGHT_STATIONARY = "ws"
    INPUT_STATIONARY = "is"

    @classmethod
    def from_string(cls, text: str) -> "Dataflow":
        """Parse ``'os' | 'ws' | 'is'`` (case-insensitive) into a Dataflow."""
        normalized = str(text).strip().lower()
        for member in cls:
            if member.value == normalized:
                return member
        legal = [member.value for member in cls]
        raise ConfigError(f"unknown dataflow {text!r}; legal values are {legal}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class HardwareConfig:
    """Complete description of one accelerator configuration.

    Attributes mirror Table I of the paper; ``partition_rows`` /
    ``partition_cols`` extend it with the scale-out grid (1x1 means a
    monolithic, scale-up configuration), and ``word_bytes`` sets the
    operand width for bandwidth accounting.
    """

    array_rows: int = 32
    array_cols: int = 32
    ifmap_sram_kb: int = 512
    filter_sram_kb: int = 512
    ofmap_sram_kb: int = 256
    ifmap_offset: int = 0
    filter_offset: int = 10_000_000
    ofmap_offset: int = 20_000_000
    dataflow: Dataflow = Dataflow.OUTPUT_STATIONARY
    partition_rows: int = 1
    partition_cols: int = 1
    word_bytes: int = 1
    run_name: str = "scale-sim-repro"
    fault_map: Optional["FaultMap"] = None

    def __post_init__(self) -> None:
        check_positive_int(self.array_rows, "array_rows")
        check_positive_int(self.array_cols, "array_cols")
        check_positive_int(self.ifmap_sram_kb, "ifmap_sram_kb")
        check_positive_int(self.filter_sram_kb, "filter_sram_kb")
        check_positive_int(self.ofmap_sram_kb, "ofmap_sram_kb")
        check_non_negative_int(self.ifmap_offset, "ifmap_offset")
        check_non_negative_int(self.filter_offset, "filter_offset")
        check_non_negative_int(self.ofmap_offset, "ofmap_offset")
        check_positive_int(self.partition_rows, "partition_rows")
        check_positive_int(self.partition_cols, "partition_cols")
        check_positive_int(self.word_bytes, "word_bytes")
        if not isinstance(self.dataflow, Dataflow):
            raise ConfigError(f"dataflow must be a Dataflow, got {self.dataflow!r}")
        if self.fault_map is not None:
            from repro.resilience.faultmap import FaultMap

            if not isinstance(self.fault_map, FaultMap):
                raise ConfigError(
                    f"fault_map must be a FaultMap, got {self.fault_map!r}"
                )
            self.fault_map.validate_for(
                self.array_rows, self.array_cols,
                self.partition_rows, self.partition_cols,
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def num_macs(self) -> int:
        """MAC units in one array (the paper's per-partition PE count)."""
        return self.array_rows * self.array_cols

    @property
    def num_partitions(self) -> int:
        """Number of arrays in the scale-out grid (1 for scale-up)."""
        return self.partition_rows * self.partition_cols

    @property
    def total_macs(self) -> int:
        """MAC units across all partitions; the paper's fixed MAC budget."""
        return self.num_macs * self.num_partitions

    @property
    def is_monolithic(self) -> bool:
        """True when this is a scale-up (single array) configuration."""
        return self.num_partitions == 1

    @property
    def is_degraded(self) -> bool:
        """True when a fault map disables any hardware component."""
        return self.fault_map is not None and not self.fault_map.is_healthy

    @property
    def effective_array_rows(self) -> int:
        """Usable array rows after PE-row faults are bypassed (R')."""
        if self.fault_map is None:
            return self.array_rows
        return self.array_rows - len(self.fault_map.dead_pe_rows)

    @property
    def effective_array_cols(self) -> int:
        """Usable array columns after PE-column faults are bypassed (C')."""
        if self.fault_map is None:
            return self.array_cols
        return self.array_cols - len(self.fault_map.dead_pe_cols)

    @property
    def surviving_partitions(self) -> int:
        """Partitions still alive under the fault map."""
        if self.fault_map is None:
            return self.num_partitions
        return self.num_partitions - len(self.fault_map.dead_partitions)

    @property
    def ifmap_sram_bytes(self) -> int:
        return self.ifmap_sram_kb * 1024

    @property
    def filter_sram_bytes(self) -> int:
        return self.filter_sram_kb * 1024

    @property
    def ofmap_sram_bytes(self) -> int:
        return self.ofmap_sram_kb * 1024

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    def with_array(self, rows: int, cols: int) -> "HardwareConfig":
        """Return a copy with a different array shape."""
        return replace(self, array_rows=rows, array_cols=cols)

    def with_partitions(self, rows: int, cols: int) -> "HardwareConfig":
        """Return a copy with a different partition grid."""
        return replace(self, partition_rows=rows, partition_cols=cols)

    def with_dataflow(self, dataflow: Dataflow) -> "HardwareConfig":
        """Return a copy using a different dataflow."""
        return replace(self, dataflow=dataflow)

    def with_fault_map(self, fault_map: Optional["FaultMap"]) -> "HardwareConfig":
        """Return a copy describing the same machine under ``fault_map``."""
        return replace(self, fault_map=fault_map)

    def partition_config(self) -> "HardwareConfig":
        """Return the per-partition configuration for a scale-out run.

        Scale-out divides the three SRAM buffers evenly among the
        partitions (Sec. IV-A of the paper) and each partition is a
        standalone array, so the returned config is monolithic.  SRAM
        sizes are floored at 1 KB to stay physically meaningful.
        """
        parts = self.num_partitions
        if parts == 1:
            return self
        return replace(
            self,
            partition_rows=1,
            partition_cols=1,
            ifmap_sram_kb=max(1, self.ifmap_sram_kb // parts),
            filter_sram_kb=max(1, self.filter_sram_kb // parts),
            ofmap_sram_kb=max(1, self.ofmap_sram_kb // parts),
            # PE row/column defects follow each partition's array; dead
            # partitions and links belong to the grid, not its members.
            fault_map=self.fault_map.pe_only() if self.fault_map else None,
        )

    def as_dict(self) -> Dict[str, object]:
        """Serialize to the flat key/value mapping used by the INI format."""
        return {
            "ArrayHeight": self.array_rows,
            "ArrayWidth": self.array_cols,
            "IfmapSramSz": self.ifmap_sram_kb,
            "FilterSramSz": self.filter_sram_kb,
            "OfmapSramSz": self.ofmap_sram_kb,
            "IfmapOffset": self.ifmap_offset,
            "FilterOffset": self.filter_offset,
            "OfmapOffset": self.ofmap_offset,
            "Dataflow": self.dataflow.value,
            "PartitionRows": self.partition_rows,
            "PartitionCols": self.partition_cols,
            "WordBytes": self.word_bytes,
            "RunName": self.run_name,
            **(
                {"FaultMap": self.fault_map.to_spec()}
                if self.fault_map is not None and not self.fault_map.is_healthy
                else {}
            ),
        }

    def shape(self) -> Tuple[int, int]:
        """Return ``(array_rows, array_cols)``."""
        return (self.array_rows, self.array_cols)

    def describe(self) -> str:
        """One-line human-readable summary used by reports and the CLI."""
        grid = f"{self.partition_rows}x{self.partition_cols}"
        text = (
            f"{self.array_rows}x{self.array_cols} array, {grid} partitions, "
            f"{self.dataflow.value} dataflow, SRAM(i/f/o)="
            f"{self.ifmap_sram_kb}/{self.filter_sram_kb}/{self.ofmap_sram_kb} KB"
        )
        if self.is_degraded:
            text += f", {self.fault_map.describe()}"
        return text
