"""Ready-made hardware configurations.

``PAPER_SCALING_SRAM_KB`` records the SRAM allocation the paper uses for
the whole scaling study (Sec. IV-A): 512 KB IFMAP + 512 KB filter +
256 KB OFMAP, divided evenly among partitions when scaling out.
"""

from __future__ import annotations

from typing import Dict, List

from repro.config.hardware import Dataflow, HardwareConfig

#: SRAM budget (KB) used for all Fig. 11 / Fig. 12 sweeps in the paper.
PAPER_SCALING_SRAM_KB = {"ifmap": 512, "filter": 512, "ofmap": 256}

#: A TPU-v1-flavoured monolithic configuration (256x256 WS array).
GOOGLE_TPU_LIKE = HardwareConfig(
    array_rows=256,
    array_cols=256,
    ifmap_sram_kb=1024,
    filter_sram_kb=1024,
    ofmap_sram_kb=512,
    dataflow=Dataflow.WEIGHT_STATIONARY,
    run_name="tpu-like",
)

#: An Eyeriss-flavoured small array.
EYERISS_LIKE = HardwareConfig(
    array_rows=12,
    array_cols=14,
    ifmap_sram_kb=108,
    filter_sram_kb=108,
    ofmap_sram_kb=54,
    dataflow=Dataflow.OUTPUT_STATIONARY,
    run_name="eyeriss-like",
)

#: A tiny configuration for unit tests and quick demos.
SMALL_TEST = HardwareConfig(
    array_rows=8,
    array_cols=8,
    ifmap_sram_kb=64,
    filter_sram_kb=64,
    ofmap_sram_kb=32,
    dataflow=Dataflow.OUTPUT_STATIONARY,
    run_name="small-test",
)

_PRESETS: Dict[str, HardwareConfig] = {
    "tpu": GOOGLE_TPU_LIKE,
    "eyeriss": EYERISS_LIKE,
    "small": SMALL_TEST,
}


def preset(name: str) -> HardwareConfig:
    """Return a named preset configuration ('tpu', 'eyeriss', 'small')."""
    try:
        return _PRESETS[name.lower()]
    except KeyError:
        raise KeyError(f"unknown preset {name!r}; choose from {sorted(_PRESETS)}") from None


def preset_names() -> List[str]:
    """Return the available preset names, sorted."""
    return sorted(_PRESETS)


def paper_scaling_config(
    array_rows: int,
    array_cols: int,
    partition_rows: int = 1,
    partition_cols: int = 1,
    dataflow: Dataflow = Dataflow.OUTPUT_STATIONARY,
) -> HardwareConfig:
    """Build a config with the paper's Sec. IV-A SRAM budget.

    The 512/512/256 KB budget is the *total* across partitions; the
    scale-out engine divides it via
    :meth:`HardwareConfig.partition_config`.
    """
    return HardwareConfig(
        array_rows=array_rows,
        array_cols=array_cols,
        partition_rows=partition_rows,
        partition_cols=partition_cols,
        ifmap_sram_kb=PAPER_SCALING_SRAM_KB["ifmap"],
        filter_sram_kb=PAPER_SCALING_SRAM_KB["filter"],
        ofmap_sram_kb=PAPER_SCALING_SRAM_KB["ofmap"],
        dataflow=dataflow,
        run_name="paper-scaling",
    )
