"""Parameter-sweep runner: cartesian grids in, tidy rows out.

Every experiment in this repository is a sweep of some function over a
parameter grid with the results flattened into row dicts; this module
captures that pattern once:

    rows = run_sweep(
        lambda array, macs: {"cycles": simulate(array, macs)},
        array=[(8, 8), (16, 16)],
        macs=[2**10, 2**12],
    )

The callable receives one keyword per grid axis and returns a dict (or
a list of dicts) of measurements; each result row carries the parameter
values that produced it.  Failures can be collected instead of raised,
so a sweep over a space with infeasible corners still completes.
"""

from __future__ import annotations

import csv
import itertools
from pathlib import Path
from typing import Callable, Dict, List, Sequence, Union


def run_sweep(
    fn: Callable[..., Union[Dict, Sequence[Dict]]],
    skip_errors: bool = False,
    **grid: Sequence,
) -> List[Dict]:
    """Evaluate ``fn`` over the cartesian product of the ``grid`` axes.

    Axis order follows keyword order; parameter values are prepended to
    every result row.  With ``skip_errors=True``, a point that raises
    contributes one row with an ``"error"`` column instead of aborting
    the sweep.
    """
    if not grid:
        raise ValueError("sweep needs at least one parameter axis")
    for name, values in grid.items():
        if not values:
            raise ValueError(f"axis {name!r} is empty")

    axes = list(grid.items())
    rows: List[Dict] = []
    for point in itertools.product(*(values for _, values in axes)):
        params = {name: value for (name, _), value in zip(axes, point)}
        try:
            outcome = fn(**params)
        except Exception as exc:  # noqa: BLE001 - the point of skip_errors
            if not skip_errors:
                raise
            rows.append({**params, "error": f"{type(exc).__name__}: {exc}"})
            continue
        results = outcome if isinstance(outcome, (list, tuple)) else [outcome]
        for result in results:
            overlap = set(params) & set(result)
            if overlap:
                raise ValueError(
                    f"result keys {sorted(overlap)} collide with parameter names"
                )
            rows.append({**params, **result})
    return rows


def sweep_to_csv(rows: Sequence[Dict], path: Union[str, Path]) -> Path:
    """Write sweep rows to a CSV; the header is the union of all keys."""
    if not rows:
        raise ValueError("no rows to write")
    header: List[str] = []
    for row in rows:
        for key in row:
            if key not in header:
                header.append(key)
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=header, restval="")
        writer.writeheader()
        writer.writerows(rows)
    return path


def pivot(
    rows: Sequence[Dict],
    index: str,
    column: str,
    value: str,
) -> Dict:
    """Reshape rows into ``{index: {column: value}}`` for table rendering."""
    table: Dict = {}
    for row in rows:
        if index not in row or column not in row or value not in row:
            continue
        table.setdefault(row[index], {})[row[column]] = row[value]
    if not table:
        raise ValueError(f"no rows carry all of {index!r}, {column!r}, {value!r}")
    return table
