"""Parameter-sweep runner: cartesian grids in, tidy rows out.

Every experiment in this repository is a sweep of some function over a
parameter grid with the results flattened into row dicts; this module
captures that pattern once:

    rows = run_sweep(
        lambda array, macs: {"cycles": simulate(array, macs)},
        array=[(8, 8), (16, 16)],
        macs=[2**10, 2**12],
    )

The callable receives one keyword per grid axis and returns a dict (or
a list of dicts) of measurements; each result row carries the parameter
values that produced it.

Execution routes through the fault-tolerant layer (:mod:`repro.robust`):
pass an :class:`~repro.robust.ExecutionPolicy` for retries, per-point
timeouts and circuit breaking, and a checkpoint path (or
:class:`~repro.robust.CheckpointStore`) to make the sweep resumable —
an interrupted run replays completed points from its journal instead of
re-executing them.  :func:`run_sweep_report` additionally returns the
:class:`~repro.robust.RunReport` accounting for every grid point.
"""

from __future__ import annotations

import csv
import io
import itertools
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SweepError
from repro.obs.progress import ProgressSnapshot
from repro.robust.checkpoint import CheckpointStore
from repro.robust.executor import execute_grid
from repro.robust.policy import ExecutionPolicy
from repro.robust.report import RunReport
from repro.robust.supervisor import SupervisorPolicy
from repro.utils.atomicio import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - hint-only import
    from repro.store.ledger import SweepLedger


def grid_points(**grid: Sequence) -> List[Dict]:
    """The cartesian product of the grid axes, in keyword order.

    Every axis must be a non-empty sized collection of values; a
    missing, empty or non-sequence axis (including a bare string, which
    would silently sweep per *character*) raises a typed
    :class:`~repro.errors.SweepError` naming the offending key instead
    of producing an empty or nonsensical sweep.
    """
    if not grid:
        raise SweepError("sweep needs at least one parameter axis")
    for name, values in grid.items():
        if isinstance(values, (str, bytes)) or not hasattr(values, "__len__"):
            raise SweepError(
                f"axis {name!r} must be a sequence of values, got "
                f"{type(values).__name__} ({values!r})"
            )
        if len(values) == 0:
            raise SweepError(f"axis {name!r} is empty")
    axes = list(grid.items())
    return [
        {name: value for (name, _), value in zip(axes, point)}
        for point in itertools.product(*(values for _, values in axes))
    ]


class _FreshLedgerView:
    """A ledger as a write-only journal: records land, nothing replays.

    ``run_sweep(ledger=...)`` without ``incremental=True`` must
    re-simulate every point (refreshing the ledger's entries) while
    still sinking results durably — so this view hides the completed
    set from the executor's replay path but forwards every write.
    """

    def __init__(self, ledger: "SweepLedger"):
        self.ledger = ledger
        self.version = ledger.version

    def key(self, params: Dict) -> str:
        return self.ledger.key(params)

    def get(self, params: Dict) -> Optional[Dict]:
        return None

    def completed(self, params: Dict) -> bool:
        return False

    def record(self, params: Dict, status: str, **kwargs) -> Dict:
        return self.ledger.record(params, status, **kwargs)


class _CheckedCallable:
    """Wrap ``fn`` to reject result keys that collide with parameters.

    A class (rather than a closure) so the wrapper stays picklable
    whenever ``fn`` is — required for multiprocess sweeps.
    """

    def __init__(self, fn: Callable[..., Union[Dict, Sequence[Dict]]]):
        self.fn = fn

    def __call__(self, **params):
        outcome = self.fn(**params)
        results = outcome if isinstance(outcome, (list, tuple)) else [outcome]
        for result in results:
            overlap = set(params) & set(result)
            if overlap:
                raise ValueError(
                    f"result keys {sorted(overlap)} collide with parameter names"
                )
        return [{**params, **result} for result in results]


def _checked(fn: Callable[..., Union[Dict, Sequence[Dict]]]) -> Callable:
    """Wrap ``fn`` to reject result keys that collide with parameters."""
    return _CheckedCallable(fn)


def run_sweep_report(
    fn: Callable[..., Union[Dict, Sequence[Dict]]],
    skip_errors: bool = False,
    policy: Optional[ExecutionPolicy] = None,
    checkpoint: Optional[Union[str, Path, CheckpointStore]] = None,
    on_progress: Optional[Callable[[ProgressSnapshot], None]] = None,
    workers: int = 1,
    supervisor: Optional[SupervisorPolicy] = None,
    estimator: Optional[Callable[..., Tuple[Dict, float]]] = None,
    top_k: Optional[int] = None,
    prune_band: Optional[float] = None,
    exact: bool = False,
    ledger: Optional[Union[str, Path, "SweepLedger"]] = None,
    incremental: bool = False,
    **grid: Sequence,
) -> Tuple[List[Dict], RunReport]:
    """Like :func:`run_sweep` but also returns the per-point report.

    Axis order follows keyword order; parameter values are prepended to
    every result row.  With ``skip_errors=True`` (or a collect-mode
    ``policy``), a point that exhausts its retries contributes one row
    with stable ``status`` and ``error`` columns instead of aborting the
    sweep.  The report accounts for every grid point regardless.

    ``workers > 1`` evaluates grid points on a supervised process pool
    with byte-identical rows, report and checkpoint journal (serial
    fallback when ``fn`` is not picklable) — see
    :mod:`repro.robust.supervisor`.  ``supervisor`` tunes the pool's
    crash recovery, per-point wall-clock/RSS ceilings, hung-worker
    heartbeats and quarantine thresholds.

    ``on_progress`` receives one
    :class:`~repro.obs.progress.ProgressSnapshot` per settled point
    (done/total, rolling throughput, ETA); the same telemetry is always
    logged at INFO under ``repro.obs.progress``.

    ``estimator`` opts in to analytical pruning (the sweep compiler):
    it is called with the same keywords as ``fn`` and returns
    ``(row, score)`` — a closed-form measurement row and the objective
    the frontier is ranked by (lower is better).  Only the frontier —
    the ``top_k`` best-scoring points plus everything within
    ``prune_band`` of the best score (defaults from
    :mod:`repro.perf.compiler`) — executes ``fn``; the rest settle as
    ``estimated`` rows marked with a ``status`` column, keeping CSVs,
    journals and resume schema-compatible.  ``exact=True`` is the
    escape hatch: the estimator is ignored and every point simulates
    byte-identically to a sweep without one.

    ``ledger`` sinks every completed point into a crash-safe columnar
    :class:`~repro.store.ledger.SweepLedger` (a path opens one) instead
    of a JSONL checkpoint; with ``incremental=True`` the requested grid
    is diffed against the ledger first and only new / invalidated /
    quarantined points simulate — everything already completed under
    the current parameters and package version replays from the
    ledger's mmap'd segments.  ``ledger`` and ``checkpoint`` are
    mutually exclusive (the ledger *is* the journal).
    """
    points = grid_points(**grid)
    if policy is None:
        policy = ExecutionPolicy(mode="collect" if skip_errors else "fail_fast")
    elif skip_errors and policy.mode != "collect":
        raise ValueError("skip_errors=True conflicts with a fail_fast policy")
    if ledger is not None and checkpoint is not None:
        raise ValueError("pass either checkpoint or ledger, not both")
    if incremental and ledger is None:
        raise ValueError("incremental=True needs a ledger to re-sweep against")
    if isinstance(checkpoint, (str, Path)):
        checkpoint = CheckpointStore(checkpoint)
    owned_ledger = None
    if ledger is not None and not hasattr(ledger, "diff_grid"):
        from repro.store.ledger import SweepLedger

        ledger = owned_ledger = SweepLedger(ledger)
    if ledger is not None:
        journal = ledger if incremental else _FreshLedgerView(ledger)
    else:
        journal = checkpoint
    try:
        estimates = None
        if estimator is not None and not exact:
            from repro.perf.compiler import plan_estimates

            estimates = plan_estimates(
                estimator, points, top_k, prune_band, journal=journal
            )
        elif top_k is not None or prune_band is not None:
            if estimator is None and not exact:
                raise ValueError("top_k/prune_band need an estimator to prune with")
        report = execute_grid(
            _checked(fn),
            points,
            policy=policy,
            checkpoint=journal,
            on_progress=on_progress,
            workers=workers,
            supervisor=supervisor,
            estimates=estimates,
        )
        return report.rows(), report
    finally:
        if ledger is not None:
            # Seal the tail so results are columnar on disk, not just
            # journalled; entries are already fsync-durable either way.
            ledger.flush()
        if owned_ledger is not None:
            owned_ledger.close()


def run_sweep(
    fn: Callable[..., Union[Dict, Sequence[Dict]]],
    skip_errors: bool = False,
    policy: Optional[ExecutionPolicy] = None,
    checkpoint: Optional[Union[str, Path, CheckpointStore]] = None,
    workers: int = 1,
    supervisor: Optional[SupervisorPolicy] = None,
    estimator: Optional[Callable[..., Tuple[Dict, float]]] = None,
    top_k: Optional[int] = None,
    prune_band: Optional[float] = None,
    exact: bool = False,
    ledger: Optional[Union[str, Path, "SweepLedger"]] = None,
    incremental: bool = False,
    **grid: Sequence,
) -> List[Dict]:
    """Evaluate ``fn`` over the cartesian product of the ``grid`` axes.

    Axis order follows keyword order; parameter values are prepended to
    every result row.  With ``skip_errors=True``, a point that raises
    contributes one row with ``status`` and ``error`` columns instead of
    aborting the sweep.  ``policy`` and ``checkpoint`` opt in to the
    fault-tolerant machinery (retries, timeouts, resumable journals),
    ``workers`` to multiprocess execution, ``estimator`` / ``top_k`` /
    ``prune_band`` / ``exact`` to analytical pruning, and ``ledger`` /
    ``incremental`` to the crash-safe columnar sweep ledger — see
    :func:`run_sweep_report` for the full contract and the per-point
    accounting.
    """
    rows, _ = run_sweep_report(
        fn,
        skip_errors=skip_errors,
        policy=policy,
        checkpoint=checkpoint,
        workers=workers,
        supervisor=supervisor,
        estimator=estimator,
        top_k=top_k,
        prune_band=prune_band,
        exact=exact,
        ledger=ledger,
        incremental=incremental,
        **grid,
    )
    return rows


def sweep_to_csv(rows: Sequence[Dict], path: Union[str, Path]) -> Path:
    """Atomically write sweep rows to a CSV; the header is the union of
    all keys.

    Rows missing some header keys (e.g. error rows without measurement
    columns) are backfilled with empty cells, so the file always has a
    rectangular, consistent schema.  The file is rendered in memory and
    published via :func:`repro.utils.atomicio.atomic_write_text` (temp
    file + fsync + rename), so a crash mid-export can never leave a
    truncated CSV next to a complete journal.
    """
    if not rows:
        raise ValueError("no rows to write")
    header: List[str] = []
    for row in rows:
        for key in row:
            if key not in header:
                header.append(key)
    buffer = io.StringIO(newline="")
    writer = csv.DictWriter(buffer, fieldnames=header, restval="")
    writer.writeheader()
    writer.writerows(rows)
    return atomic_write_text(Path(path), buffer.getvalue())


def pivot(
    rows: Sequence[Dict],
    index: str,
    column: str,
    value: str,
) -> Dict:
    """Reshape rows into ``{index: {column: value}}`` for table rendering."""
    table: Dict = {}
    for row in rows:
        if index not in row or column not in row or value not in row:
            continue
        table.setdefault(row[index], {})[row[column]] = row[value]
    if not table:
        raise ValueError(f"no rows carry all of {index!r}, {column!r}, {value!r}")
    return table


def pivot_to_csv(
    table: Dict,
    path: Union[str, Path],
    index_name: str = "index",
) -> Path:
    """Atomically export a :func:`pivot` table as a CSV.

    Column order is first-seen across the table's rows; missing cells
    are left empty.  Publishes through
    :func:`repro.utils.atomicio.atomic_write_text`, same crash contract
    as :func:`sweep_to_csv`.
    """
    if not table:
        raise ValueError("no pivot table to write")
    columns: List = []
    for cells in table.values():
        for column in cells:
            if column not in columns:
                columns.append(column)
    buffer = io.StringIO(newline="")
    writer = csv.writer(buffer)
    writer.writerow([index_name, *[str(column) for column in columns]])
    for index_value, cells in table.items():
        writer.writerow(
            [index_value, *[cells.get(column, "") for column in columns]]
        )
    return atomic_write_text(Path(path), buffer.getvalue())
