"""Parameter-sweep runner: cartesian grids in, tidy rows out.

Every experiment in this repository is a sweep of some function over a
parameter grid with the results flattened into row dicts; this module
captures that pattern once:

    rows = run_sweep(
        lambda array, macs: {"cycles": simulate(array, macs)},
        array=[(8, 8), (16, 16)],
        macs=[2**10, 2**12],
    )

The callable receives one keyword per grid axis and returns a dict (or
a list of dicts) of measurements; each result row carries the parameter
values that produced it.

Execution routes through the fault-tolerant layer (:mod:`repro.robust`):
pass an :class:`~repro.robust.ExecutionPolicy` for retries, per-point
timeouts and circuit breaking, and a checkpoint path (or
:class:`~repro.robust.CheckpointStore`) to make the sweep resumable —
an interrupted run replays completed points from its journal instead of
re-executing them.  :func:`run_sweep_report` additionally returns the
:class:`~repro.robust.RunReport` accounting for every grid point.
"""

from __future__ import annotations

import csv
import itertools
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.progress import ProgressSnapshot
from repro.robust.checkpoint import CheckpointStore
from repro.robust.executor import execute_grid
from repro.robust.policy import ExecutionPolicy
from repro.robust.report import RunReport
from repro.robust.supervisor import SupervisorPolicy


def grid_points(**grid: Sequence) -> List[Dict]:
    """The cartesian product of the grid axes, in keyword order."""
    if not grid:
        raise ValueError("sweep needs at least one parameter axis")
    for name, values in grid.items():
        if not values:
            raise ValueError(f"axis {name!r} is empty")
    axes = list(grid.items())
    return [
        {name: value for (name, _), value in zip(axes, point)}
        for point in itertools.product(*(values for _, values in axes))
    ]


class _CheckedCallable:
    """Wrap ``fn`` to reject result keys that collide with parameters.

    A class (rather than a closure) so the wrapper stays picklable
    whenever ``fn`` is — required for multiprocess sweeps.
    """

    def __init__(self, fn: Callable[..., Union[Dict, Sequence[Dict]]]):
        self.fn = fn

    def __call__(self, **params):
        outcome = self.fn(**params)
        results = outcome if isinstance(outcome, (list, tuple)) else [outcome]
        for result in results:
            overlap = set(params) & set(result)
            if overlap:
                raise ValueError(
                    f"result keys {sorted(overlap)} collide with parameter names"
                )
        return [{**params, **result} for result in results]


def _checked(fn: Callable[..., Union[Dict, Sequence[Dict]]]) -> Callable:
    """Wrap ``fn`` to reject result keys that collide with parameters."""
    return _CheckedCallable(fn)


def run_sweep_report(
    fn: Callable[..., Union[Dict, Sequence[Dict]]],
    skip_errors: bool = False,
    policy: Optional[ExecutionPolicy] = None,
    checkpoint: Optional[Union[str, Path, CheckpointStore]] = None,
    on_progress: Optional[Callable[[ProgressSnapshot], None]] = None,
    workers: int = 1,
    supervisor: Optional[SupervisorPolicy] = None,
    estimator: Optional[Callable[..., Tuple[Dict, float]]] = None,
    top_k: Optional[int] = None,
    prune_band: Optional[float] = None,
    exact: bool = False,
    **grid: Sequence,
) -> Tuple[List[Dict], RunReport]:
    """Like :func:`run_sweep` but also returns the per-point report.

    Axis order follows keyword order; parameter values are prepended to
    every result row.  With ``skip_errors=True`` (or a collect-mode
    ``policy``), a point that exhausts its retries contributes one row
    with stable ``status`` and ``error`` columns instead of aborting the
    sweep.  The report accounts for every grid point regardless.

    ``workers > 1`` evaluates grid points on a supervised process pool
    with byte-identical rows, report and checkpoint journal (serial
    fallback when ``fn`` is not picklable) — see
    :mod:`repro.robust.supervisor`.  ``supervisor`` tunes the pool's
    crash recovery, per-point wall-clock/RSS ceilings, hung-worker
    heartbeats and quarantine thresholds.

    ``on_progress`` receives one
    :class:`~repro.obs.progress.ProgressSnapshot` per settled point
    (done/total, rolling throughput, ETA); the same telemetry is always
    logged at INFO under ``repro.obs.progress``.

    ``estimator`` opts in to analytical pruning (the sweep compiler):
    it is called with the same keywords as ``fn`` and returns
    ``(row, score)`` — a closed-form measurement row and the objective
    the frontier is ranked by (lower is better).  Only the frontier —
    the ``top_k`` best-scoring points plus everything within
    ``prune_band`` of the best score (defaults from
    :mod:`repro.perf.compiler`) — executes ``fn``; the rest settle as
    ``estimated`` rows marked with a ``status`` column, keeping CSVs,
    journals and resume schema-compatible.  ``exact=True`` is the
    escape hatch: the estimator is ignored and every point simulates
    byte-identically to a sweep without one.
    """
    points = grid_points(**grid)
    if policy is None:
        policy = ExecutionPolicy(mode="collect" if skip_errors else "fail_fast")
    elif skip_errors and policy.mode != "collect":
        raise ValueError("skip_errors=True conflicts with a fail_fast policy")
    if isinstance(checkpoint, (str, Path)):
        checkpoint = CheckpointStore(checkpoint)
    estimates = None
    if estimator is not None and not exact:
        estimates = _plan_estimates(estimator, points, top_k, prune_band)
    elif top_k is not None or prune_band is not None:
        if estimator is None and not exact:
            raise ValueError("top_k/prune_band need an estimator to prune with")
    report = execute_grid(
        _checked(fn),
        points,
        policy=policy,
        checkpoint=checkpoint,
        on_progress=on_progress,
        workers=workers,
        supervisor=supervisor,
        estimates=estimates,
    )
    return report.rows(), report


def _plan_estimates(
    estimator: Callable[..., Tuple[Dict, float]],
    points: Sequence[Dict],
    top_k: Optional[int],
    prune_band: Optional[float],
) -> List[Optional[List[Dict]]]:
    """Score every point analytically and keep only the frontier exact.

    Returns the ``estimates`` sequence :func:`~repro.robust.executor
    .execute_grid` consumes: ``None`` for frontier points (simulate),
    param-prefixed ``estimated`` rows for the pruned rest.
    """
    from repro.obs import metrics
    from repro.perf.compiler import (
        DEFAULT_PRUNE_BAND,
        DEFAULT_TOP_K,
        frontier_indices,
    )

    scored: List[Tuple[Dict, float]] = []
    for params in points:
        row, score = estimator(**params)
        overlap = set(params) & set(row)
        if overlap:
            raise ValueError(
                f"estimator keys {sorted(overlap)} collide with parameter names"
            )
        scored.append((row, float(score)))
    frontier = set(
        frontier_indices(
            [score for _, score in scored],
            top_k=DEFAULT_TOP_K if top_k is None else top_k,
            prune_band=DEFAULT_PRUNE_BAND if prune_band is None else prune_band,
        )
    )
    estimates: List[Optional[List[Dict]]] = []
    for index, (params, (row, _)) in enumerate(zip(points, scored)):
        if index in frontier:
            estimates.append(None)
        else:
            estimates.append([{**params, "status": "estimated", **row}])
    metrics.counter("perf.compiler.points").add(len(points))
    metrics.counter("perf.compiler.simulated").add(len(frontier))
    metrics.counter("perf.compiler.pruned").add(len(points) - len(frontier))
    return estimates


def run_sweep(
    fn: Callable[..., Union[Dict, Sequence[Dict]]],
    skip_errors: bool = False,
    policy: Optional[ExecutionPolicy] = None,
    checkpoint: Optional[Union[str, Path, CheckpointStore]] = None,
    workers: int = 1,
    supervisor: Optional[SupervisorPolicy] = None,
    estimator: Optional[Callable[..., Tuple[Dict, float]]] = None,
    top_k: Optional[int] = None,
    prune_band: Optional[float] = None,
    exact: bool = False,
    **grid: Sequence,
) -> List[Dict]:
    """Evaluate ``fn`` over the cartesian product of the ``grid`` axes.

    Axis order follows keyword order; parameter values are prepended to
    every result row.  With ``skip_errors=True``, a point that raises
    contributes one row with ``status`` and ``error`` columns instead of
    aborting the sweep.  ``policy`` and ``checkpoint`` opt in to the
    fault-tolerant machinery (retries, timeouts, resumable journals),
    ``workers`` to multiprocess execution, and ``estimator`` /
    ``top_k`` / ``prune_band`` / ``exact`` to analytical pruning — see
    :func:`run_sweep_report` for the full contract and the per-point
    accounting.
    """
    rows, _ = run_sweep_report(
        fn,
        skip_errors=skip_errors,
        policy=policy,
        checkpoint=checkpoint,
        workers=workers,
        supervisor=supervisor,
        estimator=estimator,
        top_k=top_k,
        prune_band=prune_band,
        exact=exact,
        **grid,
    )
    return rows


def sweep_to_csv(rows: Sequence[Dict], path: Union[str, Path]) -> Path:
    """Write sweep rows to a CSV; the header is the union of all keys.

    Rows missing some header keys (e.g. error rows without measurement
    columns) are backfilled with empty cells, so the file always has a
    rectangular, consistent schema.
    """
    if not rows:
        raise ValueError("no rows to write")
    header: List[str] = []
    for row in rows:
        for key in row:
            if key not in header:
                header.append(key)
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=header, restval="")
        writer.writeheader()
        writer.writerows(rows)
    return path


def pivot(
    rows: Sequence[Dict],
    index: str,
    column: str,
    value: str,
) -> Dict:
    """Reshape rows into ``{index: {column: value}}`` for table rendering."""
    table: Dict = {}
    for row in rows:
        if index not in row or column not in row or value not in row:
            continue
        table.setdefault(row[index], {})[row[column]] = row[value]
    if not table:
        raise ValueError(f"no rows carry all of {index!r}, {column!r}, {value!r}")
    return table
