"""Per-stream statistics of engine-generated traces."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.dataflow.base import DataflowEngine
from repro.utils.validation import check_choice

STREAMS = ("ifmap", "filter", "ofmap")


def stream_addresses(engine: DataflowEngine, layout, stream: str = "ifmap") -> Iterator[int]:
    """Flatten one operand stream's addresses in access order.

    Addresses within a cycle are emitted in the trace's row order (edge
    port order); ``layout`` may be a matrix-space ``AddressLayout`` or a
    tensor-space ``TensorAddressLayout``.
    """
    check_choice(stream, "stream", STREAMS)
    for row in engine.layer_trace(layout):
        addrs = {
            "ifmap": row.ifmap_addrs,
            "filter": row.filter_addrs,
            "ofmap": row.ofmap_addrs,
        }[stream]
        yield from addrs


@dataclass(frozen=True)
class StreamStats:
    """Counting summary of one operand stream."""

    stream: str
    accesses: int
    unique_addresses: int
    min_address: int
    max_address: int

    @property
    def accesses_per_address(self) -> float:
        """Average touches per distinct address: the stream's raw reuse."""
        return self.accesses / max(1, self.unique_addresses)

    @property
    def footprint(self) -> int:
        """Span of the touched region (inclusive), in addresses."""
        return self.max_address - self.min_address + 1


def stream_stats(engine: DataflowEngine, layout, stream: str = "ifmap") -> StreamStats:
    """Compute counting statistics for one operand stream."""
    seen = set()
    count = 0
    lo, hi = None, None
    for address in stream_addresses(engine, layout, stream):
        count += 1
        seen.add(address)
        lo = address if lo is None else min(lo, address)
        hi = address if hi is None else max(hi, address)
    if count == 0:
        raise ValueError(f"stream {stream!r} produced no accesses")
    return StreamStats(
        stream=stream,
        accesses=count,
        unique_addresses=len(seen),
        min_address=lo,
        max_address=hi,
    )
