"""Trace analysis: reuse distances and stream statistics.

SCALE-Sim's trace-based methodology exists so traces can be *analyzed*;
this package supplies the standard tools: LRU reuse-distance profiles
(the capacity-miss oracle for any buffer size) and per-stream
statistics, computed directly from the engines' exact address streams.
"""

from repro.traceanalysis.reuse import ReuseProfile, reuse_distances, reuse_profile
from repro.traceanalysis.streams import StreamStats, stream_addresses, stream_stats

__all__ = [
    "ReuseProfile",
    "reuse_distances",
    "reuse_profile",
    "StreamStats",
    "stream_addresses",
    "stream_stats",
]
