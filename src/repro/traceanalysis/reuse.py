"""LRU reuse (stack) distances of an address stream.

The reuse distance of an access is the number of *distinct* addresses
touched since the previous access to the same address (infinite for
cold accesses).  Its distribution is the capacity oracle: an LRU cache
of ``C`` lines hits exactly the accesses with distance < ``C``, so one
pass over the trace prices every possible buffer size at once.

The implementation is the classic O(n log n) Fenwick-tree algorithm:
positions of most-recent accesses are marked in a bit-indexed tree, and
the distance is the count of marked positions after the address's
previous access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

COLD = -1  # sentinel distance for first-touch accesses


class _Fenwick:
    """Prefix-sum tree over time positions (1-indexed)."""

    def __init__(self, size: int):
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index < len(self._tree):
            self._tree[index] += delta
            index += index & (-index)

    def prefix(self, index: int) -> int:
        """Sum of entries [0, index]."""
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total


def reuse_distances(addresses: Iterable[int]) -> List[int]:
    """Per-access LRU reuse distance; ``COLD`` (-1) for first touches."""
    stream = list(addresses)
    tree = _Fenwick(len(stream))
    last_position: Dict[int, int] = {}
    distances: List[int] = []
    for position, address in enumerate(stream):
        previous = last_position.get(address)
        if previous is None:
            distances.append(COLD)
        else:
            # Distinct addresses touched strictly after `previous`:
            # marked positions in (previous, position).
            marked = tree.prefix(position - 1) - tree.prefix(previous)
            distances.append(marked)
            tree.add(previous, -1)  # the address's mark moves forward
        tree.add(position, +1)
        last_position[address] = position
    return distances


@dataclass(frozen=True)
class ReuseProfile:
    """Summary of one stream's reuse behaviour."""

    accesses: int
    cold: int
    distances: List[int]  # warm accesses only, unsorted

    @property
    def unique_addresses(self) -> int:
        return self.cold

    @property
    def warm(self) -> int:
        return self.accesses - self.cold

    def hits_with_capacity(self, capacity: int) -> int:
        """Accesses an LRU cache of ``capacity`` lines would hit."""
        if capacity <= 0:
            return 0
        return sum(1 for distance in self.distances if distance < capacity)

    def hit_rate(self, capacity: int) -> float:
        return self.hits_with_capacity(capacity) / max(1, self.accesses)

    def capacity_for_hit_rate(self, target: float) -> Optional[int]:
        """Smallest LRU capacity reaching ``target`` hit rate, or None
        if even a cache holding everything falls short (cold misses)."""
        if not 0 < target <= 1:
            raise ValueError(f"target must be in (0, 1], got {target}")
        if self.warm / max(1, self.accesses) < target:
            return None
        ordered = sorted(self.distances)
        needed = int(-(-target * self.accesses // 1))  # ceil
        return ordered[needed - 1] + 1


def reuse_profile(addresses: Iterable[int]) -> ReuseProfile:
    """Compute the reuse profile of one address stream."""
    distances = reuse_distances(addresses)
    warm = [distance for distance in distances if distance != COLD]
    return ReuseProfile(
        accesses=len(distances),
        cold=len(distances) - len(warm),
        distances=warm,
    )
