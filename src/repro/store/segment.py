"""Columnar sweep-ledger segments: struct-packed, checksummed, mmap'd.

One *segment* is the durable unit of the sweep ledger
(:mod:`repro.store.ledger`): a batch of completed grid-point journal
entries flattened into fixed-schema columnar arrays and sealed into a
single self-verifying file.  The wire format is stdlib ``struct`` +
raw little-endian numpy buffers, so a reader can memory-map the file
and hand out **zero-copy** ``numpy`` views of any column — which is
what makes ledger-wide pareto/group-by queries cheap.

Wire format (all integers little-endian)::

    offset  size  field
    0       4     magic  b"RSG1"
    4       2     format version (u16) — readers reject any other
    6       2     reserved flags (u16, zero)
    8       4     header length H (u32)
    12      H     header JSON (utf-8; schema below)
    ...           column blobs, each 8-byte aligned, in header order
    EOF-36  32    SHA-256 of every preceding byte
    EOF-4   4     footer magic b"RSGE"

A torn write (truncation), a bit flip anywhere, or a stale format all
fail validation with :class:`~repro.errors.LedgerCorruptionError`; the
ledger quarantines such files and re-simulates exactly their points.

Header JSON schema::

    {"schema": 1, "version": "<package version>", "created_unix": ...,
     "rows": N,
     "columns": [{"name": ..., "dtype": "i8"|"f8"|"sd"|"js",
                  "offset": ..., ["dict": [...]]}, ...],
     "row_schemas": [["partitions", "array", "cycles", ...], ...],
     "entries": [{"key": ..., "version": ..., "params": {...},
                  "status": ..., "attempts": ..., "duration": ...,
                  "error": ..., "row_start": ..., "row_schema_ids":
                  [...]}, ...]}

Column encodings — chosen per column from the values it actually holds
so every journal value round-trips **exactly**:

* ``i8`` — int64 (all values are non-bool ints within int64 range),
* ``f8`` — float64 (all values are floats; NaN/inf included),
* ``sd`` — dictionary-encoded strings: int32 codes into the header's
  per-column string table (first-seen order),
* ``js`` — the total fallback: int32 codes into a table of JSON
  encodings (bools, ``None``, lists, mixed-type columns, ints beyond
  int64).  ``json.dumps``/``loads`` round-trips match the JSONL
  checkpoint journal byte for byte, which is what makes ledger reads
  byte-identical to journal replays.

A slot a row's schema does not name is dead (0 / NaN / code -1) and is
never read back.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import struct
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import LedgerCorruptionError
from repro.utils.atomicio import atomic_write_bytes

MAGIC = b"RSG1"
FOOTER_MAGIC = b"RSGE"
FORMAT_VERSION = 1

#: Segment header schema version (inside the JSON header).
SEGMENT_SCHEMA = 1

_PREAMBLE = struct.Struct("<4sHHI")  # magic, version, flags, header length
_CHECKSUM_LEN = 32
_FOOTER_LEN = _CHECKSUM_LEN + len(FOOTER_MAGIC)

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def _package_version() -> str:
    from repro._version import __version__

    return __version__


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def _classify(values: Sequence[object]) -> str:
    """The narrowest column encoding that round-trips every value."""
    kind = None
    for value in values:
        if isinstance(value, bool):
            return "js"
        if isinstance(value, int):
            if not (_INT64_MIN <= value <= _INT64_MAX):
                return "js"
            this = "i8"
        elif isinstance(value, float):
            this = "f8"
        elif isinstance(value, str):
            this = "sd"
        else:
            return "js"
        if kind is None:
            kind = this
        elif kind != this:
            return "js"
    return kind or "js"


def _json_cell(value: object) -> str:
    # default=repr mirrors the JSONL checkpoint journal's encoder, so a
    # value the journal would coerce to its repr coerces identically here.
    return json.dumps(value, default=repr)


@dataclass(frozen=True)
class _Column:
    name: str
    dtype: str
    offset: int
    dictionary: Optional[List[str]] = None


def encode_segment(entries: Sequence[Dict], version: Optional[str] = None) -> bytes:
    """Serialize journal ``entries`` into one sealed segment's bytes.

    Each entry is a checkpoint-journal dict (``key``/``params``/
    ``status``/``rows``/``attempts``/``duration``/``error`` and
    optionally ``version``); ``decode``/:meth:`Segment.entries` invert
    this losslessly.
    """
    if not entries:
        raise ValueError("a segment needs at least one entry")
    default_version = version if version is not None else _package_version()

    # Flatten every row, remembering each row's own key order (its
    # schema) so reconstruction preserves per-row column ordering.
    flat_rows: List[Dict] = []
    row_schemas: List[Tuple[str, ...]] = []
    schema_ids: Dict[Tuple[str, ...], int] = {}
    header_entries: List[Dict] = []
    for entry in entries:
        rows = entry.get("rows") or []
        ids: List[int] = []
        for row in rows:
            schema = tuple(row.keys())
            if schema not in schema_ids:
                schema_ids[schema] = len(row_schemas)
                row_schemas.append(schema)
            ids.append(schema_ids[schema])
            flat_rows.append(row)
        header_entries.append(
            {
                "key": entry["key"],
                "version": entry.get("version", default_version),
                "params": entry.get("params", {}),
                "status": entry.get("status"),
                "attempts": entry.get("attempts", 1),
                "duration": entry.get("duration", 0.0),
                "error": entry.get("error"),
                "row_start": len(flat_rows) - len(rows),
                "row_schema_ids": ids,
            }
        )

    # Column order: first appearance across the flattened rows.
    column_names: List[str] = []
    for schema in row_schemas:
        for name in schema:
            if name not in column_names:
                column_names.append(name)

    rows_n = len(flat_rows)
    blobs: List[bytes] = []
    columns_meta: List[Dict] = []
    offset = 0  # relative to the start of the blob region; fixed up below
    for name in column_names:
        present = [row[name] for row in flat_rows if name in row]
        dtype = _classify(present)
        if dtype == "i8":
            array = np.zeros(rows_n, dtype="<i8")
            for i, row in enumerate(flat_rows):
                if name in row:
                    array[i] = row[name]
            blob = array.tobytes()
            meta: Dict = {"name": name, "dtype": "i8"}
        elif dtype == "f8":
            array = np.full(rows_n, np.nan, dtype="<f8")
            for i, row in enumerate(flat_rows):
                if name in row:
                    array[i] = row[name]
            blob = array.tobytes()
            meta = {"name": name, "dtype": "f8"}
        else:  # sd / js share the dictionary-coded shape
            table: Dict[str, int] = {}
            strings: List[str] = []
            codes = np.full(rows_n, -1, dtype="<i4")
            for i, row in enumerate(flat_rows):
                if name not in row:
                    continue
                text = row[name] if dtype == "sd" else _json_cell(row[name])
                code = table.get(text)
                if code is None:
                    code = table[text] = len(strings)
                    strings.append(text)
                codes[i] = code
            blob = codes.tobytes()
            meta = {"name": name, "dtype": dtype, "dict": strings}
        aligned = _align8(offset)
        blobs.append(b"\x00" * (aligned - offset) + blob)
        meta["offset"] = aligned
        columns_meta.append(meta)
        offset = aligned + len(blob)

    header = {
        "schema": SEGMENT_SCHEMA,
        "version": default_version,
        "created_unix": round(time.time(), 3),
        "rows": rows_n,
        "columns": columns_meta,
        "row_schemas": [list(schema) for schema in row_schemas],
        "entries": header_entries,
    }
    header_bytes = json.dumps(
        header, separators=(",", ":"), default=repr
    ).encode("utf-8")

    preamble = _PREAMBLE.pack(MAGIC, FORMAT_VERSION, 0, len(header_bytes))
    # Align the blob region itself so per-column offsets stay 8-aligned
    # in the file (numpy tolerates misalignment; alignment keeps views
    # fast and the layout easy to reason about in a hex dump).
    blob_start = _align8(len(preamble) + len(header_bytes))
    padding = b"\x00" * (blob_start - len(preamble) - len(header_bytes))
    body = b"".join([preamble, header_bytes, padding, *blobs])
    checksum = hashlib.sha256(body).digest()
    return body + checksum + FOOTER_MAGIC


def write_segment(
    path: Union[str, Path],
    entries: Sequence[Dict],
    version: Optional[str] = None,
) -> "SegmentInfo":
    """Atomically publish ``entries`` as a sealed segment at ``path``.

    Uses the temp-file + fsync + rename pattern of
    :mod:`repro.utils.atomicio`, so a crash at any instant leaves either
    no segment or a complete one — never a torn file (bit rot is caught
    at read time by the embedded checksum instead).
    """
    payload = encode_segment(entries, version=version)
    path = Path(path)
    atomic_write_bytes(path, payload)
    digest = hashlib.sha256(payload).hexdigest()
    rows = sum(len(entry.get("rows") or []) for entry in entries)
    return SegmentInfo(
        name=path.name, sha256=digest, rows=rows, entries=len(entries),
        size_bytes=len(payload),
    )


@dataclass(frozen=True)
class SegmentInfo:
    """What the manifest WAL records about one sealed segment."""

    name: str
    sha256: str
    rows: int
    entries: int
    size_bytes: int


class Segment:
    """One sealed segment, memory-mapped and verified.

    ``column(name)`` returns a zero-copy numpy view into the mapping
    for numeric columns (int64/float64) and the raw int32 code view for
    dictionary columns; ``values(name)`` materializes python objects;
    ``entries()`` reconstructs the original journal entries exactly.
    """

    def __init__(self, path: Union[str, Path], verify: bool = True):
        self.path = Path(path)
        try:
            self._file = self.path.open("rb")
        except OSError as exc:
            raise LedgerCorruptionError(
                exc.errno or 0, f"cannot open segment: {exc}", str(self.path)
            ) from exc
        try:
            self._mmap: Union[mmap.mmap, bytes]
            try:
                self._mmap = mmap.mmap(
                    self._file.fileno(), 0, access=mmap.ACCESS_READ
                )
            except (OSError, ValueError):
                # Zero-length or unmappable file: fall back to a read —
                # validation below rejects it with a precise reason.
                self._mmap = self._file.read()
            self._parse(verify=verify)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    def _corrupt(self, reason: str) -> LedgerCorruptionError:
        return LedgerCorruptionError(0, reason, str(self.path))

    def _parse(self, verify: bool) -> None:
        buf = self._mmap
        size = len(buf)
        if size < _PREAMBLE.size + _FOOTER_LEN:
            raise self._corrupt(f"segment too short ({size} bytes)")
        magic, fmt, _flags, header_len = _PREAMBLE.unpack_from(buf, 0)
        if magic != MAGIC:
            raise self._corrupt(f"bad magic {magic!r}")
        if fmt != FORMAT_VERSION:
            raise self._corrupt(
                f"unsupported segment format {fmt} (want {FORMAT_VERSION})"
            )
        if bytes(buf[size - len(FOOTER_MAGIC):size]) != FOOTER_MAGIC:
            raise self._corrupt("missing footer magic (torn or truncated write)")
        body_end = size - _FOOTER_LEN
        recorded = bytes(buf[body_end:body_end + _CHECKSUM_LEN])
        if verify:
            computed = hashlib.sha256(buf[:body_end]).digest()
            if computed != recorded:
                raise self._corrupt(
                    f"checksum mismatch (recorded {recorded.hex()[:16]}..., "
                    f"computed {computed.hex()[:16]}...)"
                )
        header_start = _PREAMBLE.size
        if header_start + header_len > body_end:
            raise self._corrupt("header overruns the payload")
        try:
            header = json.loads(
                bytes(buf[header_start:header_start + header_len]).decode("utf-8")
            )
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise self._corrupt(f"unparsable header ({exc})") from exc
        if not isinstance(header, dict) or header.get("schema") != SEGMENT_SCHEMA:
            raise self._corrupt(
                f"stale header schema {header.get('schema')!r} "
                f"(want {SEGMENT_SCHEMA})"
            )
        self.sha256 = recorded.hex()
        self.version: str = header.get("version", "")
        self.rows: int = int(header.get("rows", 0))
        self._row_schemas: List[List[str]] = header.get("row_schemas", [])
        self._entries_meta: List[Dict] = header.get("entries", [])
        self._blob_start = _align8(header_start + header_len)
        self._body_end = body_end
        self._columns: Dict[str, _Column] = {}
        for meta in header.get("columns", []):
            column = _Column(
                name=meta["name"],
                dtype=meta["dtype"],
                offset=int(meta["offset"]),
                dictionary=meta.get("dict"),
            )
            self._columns[column.name] = column
        # Bounds-check every column before handing out views.
        for column in self._columns.values():
            itemsize = 8 if column.dtype in ("i8", "f8") else 4
            end = self._blob_start + column.offset + itemsize * self.rows
            if end > body_end:
                raise self._corrupt(
                    f"column {column.name!r} overruns the payload"
                )
        self._cells: Dict[str, List[object]] = {}

    # ------------------------------------------------------------------
    @property
    def column_names(self) -> List[str]:
        return list(self._columns)

    def column(self, name: str) -> np.ndarray:
        """Zero-copy view of one column's storage array.

        ``i8``/``f8`` columns view the payload directly; ``sd``/``js``
        columns return their int32 code array (pair with
        :meth:`dictionary` or use :meth:`values`).
        """
        column = self._columns[name]
        dtype = {"i8": "<i8", "f8": "<f8"}.get(column.dtype, "<i4")
        return np.frombuffer(
            self._mmap,
            dtype=dtype,
            count=self.rows,
            offset=self._blob_start + column.offset,
        )

    def dictionary(self, name: str) -> Optional[List[str]]:
        return self._columns[name].dictionary

    def dtype(self, name: str) -> str:
        return self._columns[name].dtype

    def values(self, name: str) -> List[object]:
        """Materialized python values of one column (dead slots ``None``)."""
        column = self._columns[name]
        raw = self.column(name)
        if column.dtype == "i8":
            return [int(v) for v in raw]
        if column.dtype == "f8":
            return [float(v) for v in raw]
        table = column.dictionary or []
        if column.dtype == "sd":
            return [table[code] if code >= 0 else None for code in raw]
        return [json.loads(table[code]) if code >= 0 else None for code in raw]

    def _cell_column(self, name: str) -> List[object]:
        cached = self._cells.get(name)
        if cached is None:
            cached = self._cells[name] = self.values(name)
        return cached

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def presence(self, name: str) -> np.ndarray:
        """Boolean mask of rows whose schema actually names ``name``."""
        mask = np.zeros(self.rows, dtype=bool)
        schema_has = [name in schema for schema in self._row_schemas]
        for entry in self._entries_meta:
            start = entry["row_start"]
            for i, schema_id in enumerate(entry["row_schema_ids"]):
                if schema_has[schema_id]:
                    mask[start + i] = True
        return mask

    # ------------------------------------------------------------------
    def row(self, index: int, schema_id: int) -> Dict:
        schema = self._row_schemas[schema_id]
        return {name: self._cell_column(name)[index] for name in schema}

    def entries(self) -> List[Dict]:
        """The original journal entries, reconstructed exactly."""
        out = []
        for meta in self._entries_meta:
            out.append(self.entry(meta))
        return out

    def entry(self, meta: Dict) -> Dict:
        start = meta["row_start"]
        rows = [
            self.row(start + i, schema_id)
            for i, schema_id in enumerate(meta["row_schema_ids"])
        ]
        return {
            "key": meta["key"],
            "version": meta["version"],
            "params": meta["params"],
            "status": meta["status"],
            "rows": rows,
            "attempts": meta["attempts"],
            "duration": meta["duration"],
            "error": meta["error"],
        }

    def entry_metas(self) -> List[Dict]:
        """Lightweight per-entry header dicts (no row materialization)."""
        return list(self._entries_meta)

    def keys(self) -> List[str]:
        return [meta["key"] for meta in self._entries_meta]

    # ------------------------------------------------------------------
    def close(self) -> None:
        if isinstance(getattr(self, "_mmap", None), mmap.mmap):
            try:
                self._mmap.close()
            except OSError:  # pragma: no cover - platform quirk
                pass
        if getattr(self, "_file", None) is not None:
            try:
                self._file.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "Segment":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._entries_meta)
