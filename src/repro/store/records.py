"""JSON round-trip for the simulator's result pair.

The persistent result store holds exactly what the in-process LRU
holds: a ``(LayerResult, DramTraffic)`` pair per simulation key.  Both
are frozen dataclasses of ints, floats, strings and lists, so they
serialize losslessly — Python's ``repr``-based float JSON encoding is
shortest-round-trip, which is what makes a store hit byte-identical to
a cold simulation.

``layer_name`` is normalized away on encode (the store, like the LRU,
is keyed on the GEMM + hardware, not the label); hits are re-labelled
by the caller via ``dataclasses.replace``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.config.hardware import Dataflow
from repro.dataflow.base import SramCounts
from repro.engine.results import LayerResult
from repro.memory.bandwidth import BandwidthProfile, DramTraffic
from repro.memory.reuse import OperandTraffic

#: Bumped whenever this wire format changes shape; readers quarantine
#: records written under any other schema instead of misparsing them.
PAYLOAD_KIND = "layer_result_pair"


def _operand_to_dict(operand: OperandTraffic) -> Dict:
    return {
        "stream": operand.stream,
        "per_fold_bytes": list(operand.per_fold_bytes),
        "unique_bytes": operand.unique_bytes,
    }


def _operand_from_dict(payload: Dict) -> OperandTraffic:
    return OperandTraffic(
        stream=payload["stream"],
        per_fold_bytes=[int(v) for v in payload["per_fold_bytes"]],
        unique_bytes=int(payload["unique_bytes"]),
    )


def encode_result_pair(result: LayerResult, traffic: DramTraffic) -> Dict:
    """Flatten one simulation result pair into a JSON-safe dict."""
    return {
        "kind": PAYLOAD_KIND,
        "result": {
            "layer_name": "",  # store entries are label-free
            "dataflow": result.dataflow.value,
            "array_rows": result.array_rows,
            "array_cols": result.array_cols,
            "partition_rows": result.partition_rows,
            "partition_cols": result.partition_cols,
            "total_cycles": result.total_cycles,
            "macs": result.macs,
            "mapping_utilization": result.mapping_utilization,
            "compute_utilization": result.compute_utilization,
            "sram": {
                "ifmap_reads": result.sram.ifmap_reads,
                "filter_reads": result.sram.filter_reads,
                "ofmap_writes": result.sram.ofmap_writes,
            },
            "dram_read_bytes": result.dram_read_bytes,
            "dram_write_bytes": result.dram_write_bytes,
            "cold_start_bytes": result.cold_start_bytes,
            "avg_read_bw": result.avg_read_bw,
            "avg_write_bw": result.avg_write_bw,
            "peak_read_bw": result.peak_read_bw,
            "peak_write_bw": result.peak_write_bw,
            "word_bytes": result.word_bytes,
            "row_folds": result.row_folds,
            "col_folds": result.col_folds,
            "idle_partitions": result.idle_partitions,
            "failed_partitions": result.failed_partitions,
            "remapped_tiles": result.remapped_tiles,
        },
        "traffic": {
            "ifmap": _operand_to_dict(traffic.ifmap),
            "filter": _operand_to_dict(traffic.filter),
            "ofmap_per_fold_bytes": list(traffic.ofmap_per_fold_bytes),
            "cold_start_bytes": traffic.cold_start_bytes,
            "fold_cycles": list(traffic.fold_cycles),
            "bandwidth": {
                "avg_read_bw": traffic.bandwidth.avg_read_bw,
                "avg_write_bw": traffic.bandwidth.avg_write_bw,
                "peak_read_bw": traffic.bandwidth.peak_read_bw,
                "peak_write_bw": traffic.bandwidth.peak_write_bw,
            },
        },
    }


def decode_result_pair(payload: Dict) -> Tuple[LayerResult, DramTraffic]:
    """Rebuild the ``(LayerResult, DramTraffic)`` pair from its dict.

    Raises ``KeyError``/``TypeError``/``ValueError`` on malformed
    payloads; the store treats any decode failure as corruption and
    quarantines the entry.
    """
    if payload.get("kind") != PAYLOAD_KIND:
        raise ValueError(f"unexpected payload kind {payload.get('kind')!r}")
    res = payload["result"]
    result = LayerResult(
        layer_name=res["layer_name"],
        dataflow=Dataflow.from_string(res["dataflow"]),
        array_rows=int(res["array_rows"]),
        array_cols=int(res["array_cols"]),
        partition_rows=int(res["partition_rows"]),
        partition_cols=int(res["partition_cols"]),
        total_cycles=int(res["total_cycles"]),
        macs=int(res["macs"]),
        mapping_utilization=float(res["mapping_utilization"]),
        compute_utilization=float(res["compute_utilization"]),
        sram=SramCounts(
            ifmap_reads=int(res["sram"]["ifmap_reads"]),
            filter_reads=int(res["sram"]["filter_reads"]),
            ofmap_writes=int(res["sram"]["ofmap_writes"]),
        ),
        dram_read_bytes=int(res["dram_read_bytes"]),
        dram_write_bytes=int(res["dram_write_bytes"]),
        cold_start_bytes=int(res["cold_start_bytes"]),
        avg_read_bw=float(res["avg_read_bw"]),
        avg_write_bw=float(res["avg_write_bw"]),
        peak_read_bw=float(res["peak_read_bw"]),
        peak_write_bw=float(res["peak_write_bw"]),
        word_bytes=int(res["word_bytes"]),
        row_folds=int(res["row_folds"]),
        col_folds=int(res["col_folds"]),
        idle_partitions=int(res["idle_partitions"]),
        failed_partitions=int(res["failed_partitions"]),
        remapped_tiles=int(res["remapped_tiles"]),
    )
    tr = payload["traffic"]
    traffic = DramTraffic(
        ifmap=_operand_from_dict(tr["ifmap"]),
        filter=_operand_from_dict(tr["filter"]),
        ofmap_per_fold_bytes=[int(v) for v in tr["ofmap_per_fold_bytes"]],
        cold_start_bytes=int(tr["cold_start_bytes"]),
        fold_cycles=[int(v) for v in tr["fold_cycles"]],
        bandwidth=BandwidthProfile(
            avg_read_bw=float(tr["bandwidth"]["avg_read_bw"]),
            avg_write_bw=float(tr["bandwidth"]["avg_write_bw"]),
            peak_read_bw=float(tr["bandwidth"]["peak_read_bw"]),
            peak_write_bw=float(tr["bandwidth"]["peak_write_bw"]),
        ),
    )
    return result, traffic
