"""Disk-backed, content-addressed, crash-safe simulation result store.

This is the cross-run promotion of :mod:`repro.perf.cache`'s in-process
LRU: one JSON record per simulation key, so identical grid points —
across sweeps, processes, clients and machines sharing a filesystem —
simulate **once, ever**.

Layout (one directory per store)::

    <root>/
      manifest.wal          append-only JSONL journal of publishes
      lock                  flock target serializing writers
      entries/<k0k1>/<key>.json
      corrupt/<key>.<n>.json   quarantined records (never re-read)

Durability contract
-------------------
* **Atomic publish.**  Every entry lands via
  :func:`repro.utils.atomicio.atomic_write_text` (temp file in the
  shard directory + fsync + ``os.replace``) followed by a directory
  fsync, so a reader observes either a complete record or a miss —
  never a partial file, even across ``kill -9`` or power loss.
* **Self-verifying records.**  Each record carries a schema version and
  a SHA-256 checksum of its canonical payload.  A bit-flipped, torn,
  truncated or schema-stale record is *detected on read*, moved to the
  ``corrupt/`` sidecar (preserving the evidence), counted, and reported
  as a miss — the caller transparently recomputes, and the next put
  heals the entry.  Corruption can never poison results.
* **Recoverable journal.**  ``manifest.wal`` is appended (fsynced)
  after each publish.  :meth:`ResultStore.recover` — run on every
  writable open — deletes orphaned temp files left by a crash mid-write
  and re-journals entries that published but died before their WAL
  append, so the manifest converges to the truth instead of diverging
  after a ``kill -9``.
* **Concurrent writers.**  Publishes take an ``flock`` on ``<root>/
  lock`` (best effort where ``fcntl`` is unavailable); the atomic
  rename makes same-key races safe regardless — last complete record
  wins, both are valid.
* **Graceful degradation.**  ``ENOSPC``/``EIO``/vanished directories
  during a put flip the store to **compute-only mode** (reads continue,
  writes stop, one warning is logged) instead of failing the
  simulation; :meth:`status` surfaces the degradation for health
  endpoints.

Observability: ``store.hits`` / ``store.misses`` / ``store.writes`` /
``store.quarantined`` / ``store.errors`` / ``store.recovered`` counters
mirror into :mod:`repro.obs.metrics` and are always available locally
via :meth:`ResultStore.status`.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

try:  # pragma: no cover - fcntl is stdlib on POSIX, absent on Windows
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

from repro.errors import StorageError, StoreCorruptionError
from repro.obs import metrics
from repro.utils.atomicio import atomic_write_text, fsync_directory

logger = logging.getLogger("repro.store")

#: Wire-format version of entry records; readers quarantine any other.
SCHEMA_VERSION = 1

#: A key is a content hash: lowercase hex, as produced by
#: :func:`repro.obs.config_hash` (16 chars) or any sha256 prefix.
_KEY_CHARS = set("0123456789abcdef")


def _package_version() -> str:
    from repro._version import __version__

    return __version__


def payload_checksum(payload: Dict) -> str:
    """Canonical SHA-256 of a JSON payload (order-insensitive)."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def valid_key(key: str) -> bool:
    return (
        isinstance(key, str)
        and 8 <= len(key) <= 64
        and all(ch in _KEY_CHARS for ch in key)
    )


class ResultStore:
    """One content-addressed store rooted at a directory.

    Thread-safe; multiple processes may share the same root (see the
    module docstring for the concurrency contract).  ``writable=False``
    opens a read-only view that never mutates the directory — useful
    for inspection tooling.
    """

    def __init__(
        self,
        root: Union[str, Path],
        writable: bool = True,
        version: Optional[str] = None,
    ):
        self.root = Path(root)
        self.version = version if version is not None else _package_version()
        self.entries_dir = self.root / "entries"
        self.corrupt_dir = self.root / "corrupt"
        self.manifest_path = self.root / "manifest.wal"
        self.lock_path = self.root / "lock"
        self._mutex = threading.Lock()
        self._writable = writable
        self.degraded_reason: Optional[str] = None
        self._counts = {
            "hits": 0, "misses": 0, "writes": 0,
            "quarantined": 0, "errors": 0, "recovered": 0,
        }
        if self.root.exists() and not self.root.is_dir():
            raise StoreCorruptionError(f"store root {self.root} is not a directory")
        if writable:
            try:
                self.entries_dir.mkdir(parents=True, exist_ok=True)
                self.corrupt_dir.mkdir(parents=True, exist_ok=True)
                self.lock_path.touch(exist_ok=True)
            except OSError as exc:
                raise StoreCorruptionError(
                    f"cannot initialize result store at {self.root}: {exc}"
                ) from exc
            self.recover()

    # ------------------------------------------------------------------
    # Bookkeeping helpers
    # ------------------------------------------------------------------
    def _count(self, name: str, delta: int = 1) -> None:
        with self._mutex:
            self._counts[name] += delta
        if metrics.enabled:
            metrics.counter(f"store.{name}").add(delta)

    def entry_path(self, key: str) -> Path:
        return self.entries_dir / key[:2] / f"{key}.json"

    @contextmanager
    def _flock(self) -> Iterator[None]:
        """Serialize writers across processes (best effort without fcntl)."""
        if fcntl is None or not self._writable:
            yield
            return
        try:
            handle = self.lock_path.open("a")
        except OSError:
            yield
            return
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            finally:
                handle.close()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict]:
        """The verified payload stored under ``key``, or ``None``.

        Any record that fails validation — unparsable JSON, wrong key,
        stale schema, checksum mismatch — is quarantined and reported
        as a miss so the caller recomputes.
        """
        path = self.entry_path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            self._count("misses")
            return None
        except OSError as exc:
            self._count("errors")
            logger.warning("store read failed for %s: %s", key, exc)
            self._count("misses")
            return None
        problem = None
        record: Optional[Dict] = None
        try:
            loaded = json.loads(text)
            record = loaded if isinstance(loaded, dict) else None
        except json.JSONDecodeError as exc:
            problem = f"unparsable JSON ({exc})"
        if problem is None:
            problem = self._validate(key, record)
        if problem is not None:
            self.quarantine(key, problem)
            self._count("misses")
            return None
        return self._hit(record)

    def _hit(self, record: Dict) -> Dict:
        self._count("hits")
        return record["payload"]

    def _validate(self, key: str, record: Optional[Dict]) -> Optional[str]:
        """Why ``record`` must not be trusted, or ``None`` if it is sound."""
        if record is None:
            return "record is not a JSON object"
        if record.get("schema") != SCHEMA_VERSION:
            return f"stale schema {record.get('schema')!r} (want {SCHEMA_VERSION})"
        if record.get("key") != key:
            return f"key mismatch (record says {record.get('key')!r})"
        payload = record.get("payload")
        if not isinstance(payload, dict):
            return "missing payload"
        checksum = payload_checksum(payload)
        if record.get("checksum") != checksum:
            return (
                f"checksum mismatch (recorded {record.get('checksum')!r}, "
                f"computed {checksum!r})"
            )
        return None

    def __contains__(self, key: str) -> bool:
        return self.entry_path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[str]:
        if not self.entries_dir.is_dir():
            return
        for shard in sorted(self.entries_dir.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                yield path.stem

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, key: str, payload: Dict, meta: Optional[Dict] = None) -> bool:
        """Durably publish ``payload`` under ``key``.

        Returns ``True`` when the entry landed, ``False`` when the
        store is (or just became) compute-only.  Storage failures
        degrade the store instead of raising; programming errors
        (invalid key, unserializable payload) still raise.
        """
        if not valid_key(key):
            raise StoreCorruptionError(f"invalid store key {key!r}")
        if not self._writable:
            return False
        record = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "version": self.version,
            "created_unix": time.time(),
            "checksum": payload_checksum(payload),
            "payload": payload,
        }
        if meta:
            record["meta"] = meta
        text = json.dumps(record, separators=(",", ":"))
        path = self.entry_path(key)
        try:
            with self._flock():
                path.parent.mkdir(parents=True, exist_ok=True)
                atomic_write_text(path, text)
                fsync_directory(path.parent)
                self._append_manifest(
                    {"op": "put", "key": key, "checksum": record["checksum"]}
                )
        except (StorageError, OSError) as exc:
            self._degrade(f"put {key} failed: {exc}")
            return False
        self._count("writes")
        return True

    def _append_manifest(self, entry: Dict) -> None:
        entry = {**entry, "ts": time.time(), "pid": os.getpid()}
        with self.manifest_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _degrade(self, reason: str) -> None:
        """Flip to compute-only mode; simulation continues without persistence."""
        self._count("errors")
        if self._writable:
            self._writable = False
            self.degraded_reason = reason
            if metrics.enabled:
                metrics.gauge("store.degraded").set(1)
            logger.warning(
                "result store %s degraded to compute-only mode: %s",
                self.root, reason,
            )

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------
    def quarantine(self, key: str, reason: str) -> Optional[Path]:
        """Move ``key``'s record into ``corrupt/`` (evidence preserved).

        Never raises: if even the quarantine move fails, the entry is
        unlinked so it cannot be re-read, and failing that it is simply
        left behind (the next ``get`` re-detects it).
        """
        path = self.entry_path(key)
        destination: Optional[Path] = None
        for attempt in range(100):
            candidate = self.corrupt_dir / f"{key}.{attempt}.json"
            if not candidate.exists():
                destination = candidate
                break
        try:
            self.corrupt_dir.mkdir(parents=True, exist_ok=True)
            if destination is None:
                raise OSError("quarantine namespace exhausted")
            os.replace(path, destination)
        except OSError:
            destination = None
            try:
                os.unlink(path)
            except OSError:
                pass
        self._count("quarantined")
        if metrics.enabled:
            metrics.counter("store.corrupt_detected").add()
        logger.warning(
            "quarantined corrupt store entry %s (%s)%s",
            key, reason,
            f" -> {destination}" if destination else "",
        )
        if self._writable:
            try:
                with self._flock():
                    self._append_manifest(
                        {"op": "quarantine", "key": key, "reason": reason}
                    )
            except OSError as exc:
                self._degrade(f"manifest append failed: {exc}")
        return destination

    def quarantined(self) -> List[Path]:
        if not self.corrupt_dir.is_dir():
            return []
        return sorted(self.corrupt_dir.glob("*.json"))

    # ------------------------------------------------------------------
    # Recovery & verification
    # ------------------------------------------------------------------
    def manifest_keys(self) -> Dict[str, str]:
        """Latest manifest op per key, tolerating a torn final line."""
        ops: Dict[str, str] = {}
        try:
            text = self.manifest_path.read_text(encoding="utf-8")
        except OSError:
            return ops
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # crash mid-append truncated this line
            if isinstance(entry, dict) and isinstance(entry.get("key"), str):
                ops[entry["key"]] = str(entry.get("op", ""))
        return ops

    def recover(self) -> Dict[str, int]:
        """Repair after a crash: drop orphan temp files, heal the manifest.

        Returns counts of what was repaired.  Safe to run at every
        open; a clean store is a no-op.
        """
        repairs = {"orphan_tmp": 0, "rejournaled": 0}
        if self.entries_dir.is_dir():
            # Under the flock: live writers hold it while their temp file
            # exists, so anything visible here is a genuine crash orphan.
            with self._flock():
                for tmp in self.entries_dir.glob("*/.*.tmp"):
                    try:
                        tmp.unlink()
                        repairs["orphan_tmp"] += 1
                    except OSError:  # pragma: no cover - raced with another opener
                        pass
        journalled = self.manifest_keys()
        missing = [
            key for key in self.keys()
            if journalled.get(key) != "put"
        ]
        for key in missing:
            try:
                with self._flock():
                    self._append_manifest({"op": "put", "key": key, "recovered": True})
                repairs["rejournaled"] += 1
            except OSError as exc:
                self._degrade(f"manifest recovery failed: {exc}")
                break
        total = sum(repairs.values())
        if total:
            self._count("recovered", total)
            logger.info(
                "store recovery at %s: %d orphan temp file(s) removed, "
                "%d entry(ies) re-journalled",
                self.root, repairs["orphan_tmp"], repairs["rejournaled"],
            )
        return repairs

    def verify(self) -> Dict[str, int]:
        """Deep-check every entry; quarantine the ones that fail.

        Reuses the read-path validation, so ``verify`` + retry is
        exactly equivalent to hitting each key once.
        """
        summary = {"checked": 0, "ok": 0, "quarantined": 0}
        for key in list(self.keys()):
            summary["checked"] += 1
            path = self.entry_path(key)
            problem: Optional[str]
            try:
                loaded = json.loads(path.read_text(encoding="utf-8"))
                record = loaded if isinstance(loaded, dict) else None
                problem = self._validate(key, record)
            except (OSError, json.JSONDecodeError) as exc:
                problem = f"unreadable ({exc})"
            if problem is None:
                summary["ok"] += 1
            else:
                self.quarantine(key, problem)
                summary["quarantined"] += 1
        return summary

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def writable(self) -> bool:
        return self._writable

    def status(self) -> Dict:
        """Health snapshot for ``/health`` and the CLI."""
        with self._mutex:
            counts = dict(self._counts)
        return {
            "root": str(self.root),
            "schema": SCHEMA_VERSION,
            "version": self.version,
            "entries": len(self),
            "corrupt": len(self.quarantined()),
            "mode": "readwrite" if self._writable else "compute-only",
            "degraded_reason": self.degraded_reason,
            **counts,
        }
