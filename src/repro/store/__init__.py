"""Durable, content-addressed simulation result store (``repro.store``).

Promotes the in-process LRU of :mod:`repro.perf.cache` to a crash-safe
cross-run cache on disk: identical grid points simulate once, ever.
See :mod:`repro.store.result_store` for the durability contract and
:mod:`repro.store.runtime` for how the engine and worker processes
find the active store.

:mod:`repro.store.ledger` adds the columnar sweep ledger — sealed,
checksummed segments (:mod:`repro.store.segment`) that make whole
sweeps durable, corruption-recoverable and incrementally re-runnable.
"""

from repro.store.ledger import (
    DEFAULT_SEGMENT_ENTRIES,
    LedgerDiff,
    SweepLedger,
)
from repro.store.records import decode_result_pair, encode_result_pair
from repro.store.result_store import SCHEMA_VERSION, ResultStore, payload_checksum
from repro.store.runtime import (
    STORE_ENV_VAR,
    active,
    configure,
    deactivate,
    disable,
    probe,
    record,
    store_key,
)
from repro.store.segment import Segment, SegmentInfo, encode_segment, write_segment

__all__ = [
    "DEFAULT_SEGMENT_ENTRIES",
    "LedgerDiff",
    "SCHEMA_VERSION",
    "STORE_ENV_VAR",
    "ResultStore",
    "Segment",
    "SegmentInfo",
    "SweepLedger",
    "encode_segment",
    "write_segment",
    "active",
    "configure",
    "deactivate",
    "decode_result_pair",
    "disable",
    "encode_result_pair",
    "payload_checksum",
    "probe",
    "record",
    "store_key",
]
