"""Crash-safe columnar sweep ledger with incremental re-sweep.

The checkpoint journal (:mod:`repro.robust.checkpoint`) made sweeps
resumable; this module makes their results *durable at scale*.  A
:class:`SweepLedger` is a drop-in journal for
:func:`repro.robust.executor.execute_grid` — same ``key`` / ``get`` /
``completed`` / ``record`` protocol, same :func:`~repro.robust
.checkpoint.point_key` content hash — that batches completed grid
points into sealed, checksummed columnar segments
(:mod:`repro.store.segment`) instead of keeping everything as one
ever-growing JSONL file.

Layout (one directory per ledger)::

    <root>/
      manifest.wal            append-only JSONL WAL of seals/quarantines
      active.jsonl            fsynced journal of not-yet-sealed entries
      lock                    flock target serializing writers
      segments/seg-NNNNNN.seg sealed columnar segments
      corrupt/                quarantined segments (evidence preserved)

Durability contract
-------------------
* **Fsynced record.**  :meth:`~SweepLedger.record` appends the entry to
  ``active.jsonl`` and fsyncs before returning — a ``kill -9`` one
  instruction later cannot lose the point.  ``active.jsonl`` uses the
  checkpoint journal's exact line format, so it *is* the existing JSONL
  journal, scoped to the unsealed tail.
* **Atomic seal.**  Every ``segment_entries`` records, the buffer is
  sealed: the segment publishes via temp file + fsync + ``os.replace``
  (under ``flock``), the manifest WAL is appended and fsynced, and only
  then is ``active.jsonl`` truncated.  A crash at *any* instant leaves
  every entry either in the fsynced active journal, in a complete
  sealed segment, or (harmlessly) in both — recovery dedups by key.
* **Self-verifying segments.**  Each segment carries a SHA-256 over its
  entire payload.  ``open()`` verifies every segment; a torn,
  truncated or bit-flipped one is quarantined to ``corrupt/`` and its
  grid points simply drop out of the completed set — the executor
  re-simulates exactly them, transparently.
* **Graceful degradation.**  ``ENOSPC``/``EDQUOT``/``EIO`` while
  sealing flips the ledger to *journal-only* mode: entries keep landing
  in the fsynced ``active.jsonl`` and the sweep completes; the
  ``ledger.degraded`` gauge and :meth:`status` surface the condition.
  If even the journal append fails, the ledger degrades once more to
  memory-only and the sweep still completes.

Incremental re-sweep
--------------------
Entries are keyed by the SHA-256 of their full parameter dict plus the
package version (:func:`~repro.robust.checkpoint.point_key`), so a
re-opened ledger knows exactly which points of a requested grid are
already priced under the current code: :meth:`~SweepLedger.diff_grid`
partitions a grid into reused and pending points, and passing the
ledger to ``run_sweep(ledger=..., incremental=True)`` (CLI: ``repro
sweep --ledger ... --incremental`` or ``repro resweep``) simulates only
the new / invalidated / quarantined points.  Changing an axis value or
upgrading the package changes the key, which invalidates exactly the
affected points.

Reads are cheap: sealed segments are memory-mapped and column queries
(:meth:`numeric_column`, :meth:`pareto`, :meth:`group_by`) slice
zero-copy numpy views per segment, which is what lets ``repro stats``
and :func:`repro.analytical.search.pareto_front` chew through large
ledgers without materializing rows.

Observability: ``ledger.entries`` / ``ledger.rows`` / ``ledger.sealed``
/ ``ledger.reused`` / ``ledger.quarantined`` / ``ledger.recovered`` /
``ledger.errors`` counters and the ``ledger.degraded`` gauge mirror
into :mod:`repro.obs.metrics`; local counts are always in
:meth:`SweepLedger.status`.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import re
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

try:  # pragma: no cover - fcntl is stdlib on POSIX, absent on Windows
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

from repro.errors import LedgerCorruptionError, StorageError, StoreCorruptionError
from repro.obs import metrics
from repro.robust.checkpoint import parse_journal_lines, point_key
from repro.store.segment import Segment, encode_segment
from repro.utils.atomicio import atomic_write_bytes, fsync_directory

logger = logging.getLogger("repro.store.ledger")

#: Entries buffered in ``active.jsonl`` before sealing a segment.
DEFAULT_SEGMENT_ENTRIES = 256

#: Test-only fault hook: when this environment variable names one of
#: the publish pipeline's crash points (``after-record``,
#: ``before-segment-publish``, ``mid-segment-publish``,
#: ``after-segment-before-manifest``, ``after-manifest-before-
#: truncate``), the process dies with ``os._exit(137)`` at that point —
#: ``mid-segment-publish`` first plants a torn half-written segment at
#: the final path, simulating a filesystem that lost the tail.  The
#: crash-drill tests and ``examples/ledger_smoke.py`` drive recovery
#: through every one of these.
CRASH_POINT_ENV = "REPRO_LEDGER_CRASH_POINT"

MODE_COLUMNAR = "columnar"
MODE_JOURNAL = "journal-only"
MODE_MEMORY = "memory-only"
_MODES = (MODE_COLUMNAR, MODE_JOURNAL, MODE_MEMORY)

_SEGMENT_NAME = re.compile(r"seg-(\d+)\.seg")

_AGGREGATES = {
    "min": min,
    "max": max,
    "sum": sum,
    "mean": lambda values: sum(values) / len(values),
    "count": len,
}


def _package_version() -> str:
    from repro._version import __version__

    return __version__


class _SegmentEntry:
    """Lazy reference to one entry living in a sealed segment."""

    __slots__ = ("segment", "meta")

    def __init__(self, segment: Segment, meta: Dict):
        self.segment = segment
        self.meta = meta


@dataclass(frozen=True)
class LedgerDiff:
    """A requested grid split against the ledger's completed set."""

    reused: List[Dict] = field(default_factory=list)
    pending: List[Dict] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.reused) + len(self.pending)

    def describe(self) -> str:
        return (
            f"{len(self.reused)}/{self.total} point(s) reused from the "
            f"ledger, {len(self.pending)} to simulate"
        )


class SweepLedger:
    """Durable columnar sink for sweep results, rooted at a directory.

    Satisfies the :class:`~repro.robust.checkpoint.PointJournal`
    protocol, so any ``checkpoint=`` site (``execute_grid``,
    ``run_sweep``, the supervised pool) accepts a ledger unchanged.
    Thread-safe; concurrent processes sharing the root serialize seals
    on ``flock`` and recover each other's crashes at open.
    """

    def __init__(
        self,
        root: Union[str, Path],
        version: Optional[str] = None,
        segment_entries: int = DEFAULT_SEGMENT_ENTRIES,
        writable: bool = True,
    ):
        if segment_entries < 1:
            raise ValueError(f"segment_entries must be >= 1, got {segment_entries}")
        self.root = Path(root)
        self.version = version if version is not None else _package_version()
        self.segment_entries = segment_entries
        self.segments_dir = self.root / "segments"
        self.corrupt_dir = self.root / "corrupt"
        self.manifest_path = self.root / "manifest.wal"
        self.active_path = self.root / "active.jsonl"
        self.lock_path = self.root / "lock"
        self._mutex = threading.RLock()
        self._writable = writable
        self._mode = MODE_COLUMNAR
        self.degraded_reason: Optional[str] = None
        self._counts = {
            "entries": 0, "rows": 0, "sealed": 0, "reused": 0,
            "quarantined": 0, "recovered": 0, "errors": 0,
        }
        self._entries: Dict[str, Union[Dict, _SegmentEntry]] = {}
        self._active: List[Dict] = []
        self._segments: Dict[str, Segment] = {}
        self._next_segment = 0
        if self.root.exists() and not self.root.is_dir():
            raise StoreCorruptionError(f"ledger root {self.root} is not a directory")
        if writable:
            try:
                self.segments_dir.mkdir(parents=True, exist_ok=True)
                self.corrupt_dir.mkdir(parents=True, exist_ok=True)
                self.lock_path.touch(exist_ok=True)
            except OSError as exc:
                raise StoreCorruptionError(
                    f"cannot initialize sweep ledger at {self.root}: {exc}"
                ) from exc
        self._recover()
        #: Keys that were already durable when this process opened the
        #: ledger — a ``get`` hit on one of them is a cross-run reuse.
        self._loaded_keys = frozenset(self._entries)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _count(self, name: str, delta: int = 1) -> None:
        with self._mutex:
            self._counts[name] += delta
        if metrics.enabled:
            metrics.counter(f"ledger.{name}").add(delta)

    @contextmanager
    def _flock(self) -> Iterator[None]:
        """Serialize writers across processes (best effort without fcntl)."""
        if fcntl is None or not self._writable:
            yield
            return
        try:
            handle = self.lock_path.open("a")
        except OSError:
            yield
            return
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            finally:
                handle.close()

    def _maybe_crash(
        self, point: str, torn: Optional[Tuple[Path, bytes]] = None
    ) -> None:
        """Die mid-pipeline when the crash-drill env hook names ``point``."""
        if os.environ.get(CRASH_POINT_ENV) != point:
            return
        if torn is not None:
            path, payload = torn
            try:
                with open(path, "wb") as handle:
                    handle.write(payload[: max(1, len(payload) // 2)])
            except OSError:  # pragma: no cover - the drill still crashes
                pass
        os._exit(137)

    def _degrade(self, mode: str, reason: str) -> None:
        """Step down the durability ladder; the sweep always completes."""
        self._count("errors")
        if _MODES.index(mode) <= _MODES.index(self._mode):
            return
        self._mode = mode
        self.degraded_reason = reason
        if metrics.enabled:
            metrics.gauge("ledger.degraded").set(_MODES.index(mode))
        logger.warning(
            "sweep ledger %s degraded to %s mode: %s", self.root, mode, reason
        )

    def _note_segment_name(self, name: str) -> None:
        match = _SEGMENT_NAME.fullmatch(name)
        if match:
            self._next_segment = max(self._next_segment, int(match.group(1)) + 1)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _manifest_segments(self) -> Dict[str, str]:
        """Latest manifest op per segment name, tolerating a torn tail."""
        ops: Dict[str, str] = {}
        try:
            text = self.manifest_path.read_text(encoding="utf-8")
        except OSError:
            return ops
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # crash mid-append truncated this line
            if isinstance(entry, dict) and isinstance(entry.get("segment"), str):
                ops[entry["segment"]] = str(entry.get("op", ""))
        return ops

    def _append_manifest(self, entry: Dict) -> None:
        entry = {**entry, "pid": os.getpid()}
        with self.manifest_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _recover(self) -> None:
        """Repair after a crash; safe (and run) at every open.

        Orphaned temp files are dropped, every sealed segment is
        checksum-verified (corrupt ones quarantined — their points fall
        out of the completed set and re-simulate), segments that
        published but died before their WAL append are re-journalled,
        and the unsealed ``active.jsonl`` tail is re-buffered with
        already-sealed duplicates dropped.
        """
        repairs = {"orphan_tmp": 0, "rejournaled": 0, "quarantined": 0}
        with self._flock():
            if self._writable and self.segments_dir.is_dir():
                # Live writers hold the flock while their temp file
                # exists, so anything visible here is a crash orphan.
                for tmp in self.segments_dir.glob(".*.tmp"):
                    try:
                        tmp.unlink()
                        repairs["orphan_tmp"] += 1
                    except OSError:  # pragma: no cover - raced another opener
                        pass
            if self.corrupt_dir.is_dir():
                for path in self.corrupt_dir.iterdir():
                    self._note_segment_name(path.name.split(".seg")[0] + ".seg")
            journalled = self._manifest_segments()
            if self.segments_dir.is_dir():
                for path in sorted(self.segments_dir.glob("seg-*.seg")):
                    self._note_segment_name(path.name)
                    try:
                        segment = Segment(path)
                    except LedgerCorruptionError as exc:
                        self._quarantine_locked(path, str(exc))
                        repairs["quarantined"] += 1
                        continue
                    self._segments[path.name] = segment
                    for meta in segment.entry_metas():
                        self._entries[meta["key"]] = _SegmentEntry(segment, meta)
                    if self._writable and journalled.get(path.name) != "seal":
                        try:
                            self._append_manifest({
                                "op": "seal", "segment": path.name,
                                "sha256": segment.sha256, "recovered": True,
                            })
                            repairs["rejournaled"] += 1
                        except OSError as exc:
                            self._degrade(
                                MODE_JOURNAL, f"manifest recovery failed: {exc}"
                            )
        self._load_active()
        total = sum(repairs.values())
        if total:
            self._count("recovered", total)
            logger.info(
                "ledger recovery at %s: %d orphan temp file(s), "
                "%d segment(s) re-journalled, %d quarantined",
                self.root, repairs["orphan_tmp"],
                repairs["rejournaled"], repairs["quarantined"],
            )

    def _load_active(self) -> None:
        """Re-buffer the unsealed tail, dropping already-sealed copies."""
        try:
            text = self.active_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return
        except OSError as exc:
            logger.warning("cannot read %s: %s", self.active_path, exc)
            return
        for entry in parse_journal_lines(text, self.active_path, logger):
            sealed = self._entries.get(entry["key"])
            if isinstance(sealed, _SegmentEntry):
                # A crash between the manifest append and the active-
                # journal truncate leaves sealed entries behind in the
                # tail; the sealed copy is durable, skip the duplicate.
                if self._same_entry(sealed, entry):
                    continue
            self._entries[entry["key"]] = entry
            self._active.append(entry)

    @staticmethod
    def _same_entry(sealed: _SegmentEntry, entry: Dict) -> bool:
        try:
            return sealed.segment.entry(sealed.meta) == entry
        except Exception:  # pragma: no cover - defensive: prefer re-seal
            return False

    def _quarantine_locked(self, path: Path, reason: str) -> Optional[Path]:
        """Move a corrupt segment into ``corrupt/``; never raises."""
        destination: Optional[Path] = None
        for attempt in range(100):
            candidate = self.corrupt_dir / f"{path.name}.{attempt}"
            if not candidate.exists():
                destination = candidate
                break
        if not self._writable:
            logger.warning(
                "corrupt ledger segment %s (%s); read-only open, "
                "skipping it", path.name, reason,
            )
            self._count("quarantined")
            return None
        try:
            self.corrupt_dir.mkdir(parents=True, exist_ok=True)
            if destination is None:
                raise OSError("quarantine namespace exhausted")
            os.replace(path, destination)
        except OSError:
            destination = None
            try:
                os.unlink(path)
            except OSError:
                pass
        self._count("quarantined")
        if metrics.enabled:
            metrics.counter("ledger.corrupt_detected").add()
        logger.warning(
            "quarantined corrupt ledger segment %s (%s)%s; its points "
            "will be re-simulated",
            path.name, reason,
            f" -> {destination}" if destination else "",
        )
        try:
            self._append_manifest(
                {"op": "quarantine", "segment": path.name, "reason": reason}
            )
        except OSError as exc:
            self._degrade(MODE_JOURNAL, f"manifest append failed: {exc}")
        return destination

    # ------------------------------------------------------------------
    # PointJournal protocol (checkpoint-compatible)
    # ------------------------------------------------------------------
    def key(self, params: Dict) -> str:
        return point_key(params, self.version)

    def _materialize(self, key: str) -> Optional[Dict]:
        entry = self._entries.get(key)
        if isinstance(entry, _SegmentEntry):
            entry = entry.segment.entry(entry.meta)
            self._entries[key] = entry
        return entry

    def get(self, params: Dict) -> Optional[Dict]:
        """The ledger entry for ``params``, or ``None`` if never recorded."""
        key = self.key(params)
        with self._mutex:
            entry = self._materialize(key)
        if entry is not None and key in self._loaded_keys:
            self._count("reused")
        return entry

    def completed(self, params: Dict) -> bool:
        """True when ``params`` already finished successfully (status ok)."""
        entry = self._entries.get(self.key(params))
        if entry is None:
            return False
        status = (
            entry.meta.get("status")
            if isinstance(entry, _SegmentEntry)
            else entry.get("status")
        )
        return status == "ok"

    @property
    def completed_count(self) -> int:
        count = 0
        for entry in self._entries.values():
            status = (
                entry.meta.get("status")
                if isinstance(entry, _SegmentEntry)
                else entry.get("status")
            )
            count += status == "ok"
        return count

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Dict]:
        for key in list(self._entries):
            entry = self._materialize(key)
            if entry is not None:
                yield entry

    def record(
        self,
        params: Dict,
        status: str,
        rows: Optional[List[Dict]] = None,
        attempts: int = 1,
        duration: float = 0.0,
        error: Optional[str] = None,
    ) -> Dict:
        """Durably journal one finished point (successful or exhausted).

        The entry is fsynced into ``active.jsonl`` before this returns;
        every ``segment_entries`` records the buffer seals into a
        columnar segment.  Storage failures degrade the ledger instead
        of failing the sweep.
        """
        if not self._writable:
            raise StoreCorruptionError(
                f"sweep ledger {self.root} was opened read-only"
            )
        entry = {
            "key": self.key(params),
            "version": self.version,
            "params": params,
            "status": status,
            "rows": rows if rows is not None else [],
            "attempts": attempts,
            "duration": duration,
            "error": error,
        }
        with self._mutex:
            self._append_active(entry)
            self._entries[entry["key"]] = entry
            self._active.append(entry)
            self._count("entries")
            self._count("rows", len(entry["rows"]))
            if self._mode == MODE_COLUMNAR and len(self._active) >= self.segment_entries:
                self._seal_locked()
        return entry

    def _append_active(self, entry: Dict) -> None:
        if self._mode == MODE_MEMORY:
            return
        # No sort_keys, same as the checkpoint journal: row dicts must
        # round-trip with their column order intact.
        line = json.dumps(entry, default=repr)
        try:
            with self.active_path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            self._degrade(MODE_MEMORY, f"active journal append failed: {exc}")
        self._maybe_crash("after-record")

    # ------------------------------------------------------------------
    # Sealing
    # ------------------------------------------------------------------
    def flush(self) -> Optional[str]:
        """Seal any buffered entries into a (possibly short) segment.

        Returns the new segment's name, or ``None`` when there was
        nothing to seal or the ledger is degraded past columnar mode
        (the entries stay durable in ``active.jsonl`` either way).
        """
        with self._mutex:
            return self._seal_locked()

    def _seal_locked(self) -> Optional[str]:
        if not self._active or self._mode != MODE_COLUMNAR or not self._writable:
            return None
        name = f"seg-{self._next_segment:06d}.seg"
        path = self.segments_dir / name
        entries = len(self._active)
        rows = sum(len(entry.get("rows") or []) for entry in self._active)
        try:
            payload = encode_segment(self._active, version=self.version)
            self._maybe_crash("before-segment-publish")
            self._maybe_crash("mid-segment-publish", torn=(path, payload))
            with self._flock():
                atomic_write_bytes(path, payload)
                fsync_directory(self.segments_dir)
                self._maybe_crash("after-segment-before-manifest")
                self._append_manifest({
                    "op": "seal",
                    "segment": name,
                    "sha256": hashlib.sha256(payload).hexdigest(),
                    "entries": entries,
                    "rows": rows,
                })
            self._maybe_crash("after-manifest-before-truncate")
        except (StorageError, OSError) as exc:
            self._degrade(MODE_JOURNAL, f"segment publish failed: {exc}")
            return None
        self._next_segment += 1
        self._count("sealed")
        try:
            self._segments[name] = Segment(path)
        except LedgerCorruptionError as exc:  # pragma: no cover - just sealed
            logger.warning("freshly sealed segment %s unreadable: %s", name, exc)
        self._active = []
        self._truncate_active()
        return name

    def _truncate_active(self) -> None:
        try:
            with self.active_path.open("w", encoding="utf-8") as handle:
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            # Benign: the sealed copies dedup the stale tail at the
            # next open.  Don't degrade a ledger that just sealed fine.
            logger.warning("cannot truncate %s: %s", self.active_path, exc)

    def close(self) -> None:
        """Seal the buffered tail (writable ledgers) and unmap segments."""
        with self._mutex:
            if self._writable:
                self._seal_locked()
            for segment in self._segments.values():
                segment.close()
            self._segments = {}
            # Drop lazy refs into the now-closed mmaps.
            self._entries = {
                key: entry
                for key, entry in self._entries.items()
                if not isinstance(entry, _SegmentEntry)
            }

    def __enter__(self) -> "SweepLedger":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Incremental re-sweep
    # ------------------------------------------------------------------
    def diff_grid(self, points: Sequence[Dict]) -> LedgerDiff:
        """Split a requested grid into reused and to-simulate points.

        A point is *reused* when its content key (params + version) is
        already completed here; everything else — brand-new points,
        points whose parameters or package version changed, and points
        lost to a quarantined segment — is *pending*.
        """
        diff = LedgerDiff()
        for params in points:
            (diff.reused if self.completed(params) else diff.pending).append(params)
        return diff

    # ------------------------------------------------------------------
    # Column queries (zero-copy over sealed segments)
    # ------------------------------------------------------------------
    def _layout(
        self, statuses: Tuple[str, ...]
    ) -> List[Tuple[Optional[Segment], object, Optional[Dict]]]:
        """Chunks covering every live row: per-segment index arrays for
        sealed entries (sliced zero-copy) and raw row lists for the
        unsealed tail, in stable entry order."""
        chunks: List[Tuple[Optional[Segment], object, Optional[Dict]]] = []
        for entry in self._entries.values():
            if isinstance(entry, _SegmentEntry):
                meta = entry.meta
                if meta.get("status") not in statuses:
                    continue
                count = len(meta.get("row_schema_ids") or ())
                if count:
                    start = meta["row_start"]
                    chunks.append(
                        (entry.segment, np.arange(start, start + count), meta)
                    )
            else:
                if entry.get("status") not in statuses:
                    continue
                rows = entry.get("rows") or []
                if rows:
                    chunks.append((None, rows, None))
        return chunks

    @staticmethod
    def _as_float(value: object) -> float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return float("nan")
        return float(value)

    def rows(self, statuses: Tuple[str, ...] = ("ok",)) -> List[Dict]:
        """Materialized result rows, aligned with the column queries."""
        out: List[Dict] = []
        for segment, selection, meta in self._layout(statuses):
            if segment is None:
                out.extend(selection)  # type: ignore[arg-type]
            else:
                start = meta["row_start"]
                for offset, schema_id in enumerate(meta["row_schema_ids"]):
                    out.append(segment.row(start + offset, schema_id))
        return out

    def numeric_column(
        self, name: str, statuses: Tuple[str, ...] = ("ok",)
    ) -> np.ndarray:
        """One column as float64, NaN where a row lacks it.

        Sealed segments contribute via zero-copy mmap views
        (:meth:`repro.store.segment.Segment.column`) sliced per entry;
        only the unsealed tail is assembled row by row.
        """
        parts: List[np.ndarray] = []
        for segment, selection, _meta in self._layout(statuses):
            if segment is None:
                parts.append(
                    np.array(
                        [self._as_float(row.get(name)) for row in selection],
                        dtype="<f8",
                    )
                )
            elif segment.has_column(name) and segment.dtype(name) in ("i8", "f8"):
                view = segment.column(name)[selection]
                present = segment.presence(name)[selection]
                values = view.astype("<f8")
                values[~present] = np.nan
                parts.append(values)
            else:
                cells = (
                    segment.values(name) if segment.has_column(name) else None
                )
                parts.append(
                    np.array(
                        [
                            self._as_float(cells[i]) if cells else float("nan")
                            for i in selection
                        ],
                        dtype="<f8",
                    )
                )
        if not parts:
            return np.zeros(0, dtype="<f8")
        return np.concatenate(parts)

    def values_column(
        self, name: str, statuses: Tuple[str, ...] = ("ok",)
    ) -> List[object]:
        """One column as python objects, ``None`` where a row lacks it."""
        out: List[object] = []
        for segment, selection, _meta in self._layout(statuses):
            if segment is None:
                out.extend(row.get(name) for row in selection)
            elif segment.has_column(name):
                cells = segment.values(name)
                present = segment.presence(name)
                out.extend(
                    cells[i] if present[i] else None for i in selection
                )
            else:
                out.extend(None for _ in selection)
        return out

    def pareto(
        self,
        minimize: Sequence[str] = (),
        maximize: Sequence[str] = (),
        statuses: Tuple[str, ...] = ("ok",),
    ) -> List[Dict]:
        """Rows on the pareto front of the named objective columns."""
        from repro.analytical.search import pareto_front

        names = list(minimize) + list(maximize)
        if not names:
            raise ValueError("pareto needs at least one objective column")
        columns = [self.numeric_column(name, statuses) for name in minimize]
        columns += [-self.numeric_column(name, statuses) for name in maximize]
        matrix = np.column_stack(columns) if columns else np.zeros((0, 0))
        if matrix.shape[0] == 0:
            return []
        valid = ~np.isnan(matrix).any(axis=1)
        candidates = np.nonzero(valid)[0]
        if candidates.size == 0:
            return []
        front = pareto_front(matrix[candidates])
        chosen = set(int(candidates[i]) for i in front)
        rows = self.rows(statuses)
        return [row for index, row in enumerate(rows) if index in chosen]

    def group_by(
        self,
        key: str,
        value: str,
        agg: str = "min",
        statuses: Tuple[str, ...] = ("ok",),
    ) -> Dict:
        """Aggregate ``value`` per distinct ``key`` (min/max/mean/sum/count)."""
        if agg not in _AGGREGATES:
            raise ValueError(
                f"unknown aggregate {agg!r}; pick one of {sorted(_AGGREGATES)}"
            )
        keys = self.values_column(key, statuses)
        values = self.numeric_column(value, statuses)
        groups: Dict[object, List[float]] = {}
        for group, cell in zip(keys, values):
            if group is None or np.isnan(cell):
                continue
            groups.setdefault(group, []).append(float(cell))
        reduce = _AGGREGATES[agg]
        return {group: reduce(cells) for group, cells in groups.items()}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def writable(self) -> bool:
        return self._writable

    @property
    def mode(self) -> str:
        return self._mode

    def segments(self) -> List[Path]:
        if not self.segments_dir.is_dir():
            return []
        return sorted(self.segments_dir.glob("seg-*.seg"))

    def quarantined(self) -> List[Path]:
        if not self.corrupt_dir.is_dir():
            return []
        return sorted(p for p in self.corrupt_dir.iterdir() if p.is_file())

    def status(self) -> Dict:
        """Health snapshot for the CLI, ``/health`` and tests."""
        with self._mutex:
            counts = dict(self._counts)
            pending = len(self._active)
        return {
            "root": str(self.root),
            "version": self.version,
            "mode": self._mode,
            "degraded_reason": self.degraded_reason,
            "entries": len(self._entries),
            "completed": self.completed_count,
            "segments": len(self.segments()),
            "corrupt": len(self.quarantined()),
            "pending": pending,
            "counters": counts,
        }
