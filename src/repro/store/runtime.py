"""Process-wide active store: configuration, key derivation, engine hooks.

The engine does not know where (or whether) results persist; it calls
:func:`probe` and :func:`record` with the same memoization key the
in-process LRU uses, and this module maps that onto whichever
:class:`~repro.store.result_store.ResultStore` is active:

* :func:`configure` opens (or creates) a store and exports its path in
  the ``REPRO_RESULT_STORE`` environment variable, so worker processes
  spawned afterwards (the supervised pool, the daemon's job runners)
  inherit the same store and lazily open it on first use — no plumbing
  through the executor signatures.
* :func:`disable` turns persistence off for this process tree (the CLI
  ``--no-store`` flag), overriding any inherited environment.
* :func:`active` resolves the current store: the explicitly configured
  one, else a lazy open of the environment path, else ``None``.

Store keys are the :func:`repro.obs.config_hash` of the simulation key
plus the package version — the "config-hash stamping" contract from
``repro.obs`` — so a code upgrade addresses fresh entries instead of
replaying stale physics, and cross-version stores coexist in one
directory.

Every failure path degrades to computing without persistence; a broken
store directory can slow a run down, never wrong it.
"""

from __future__ import annotations

import logging
import os
from pathlib import Path
from typing import Hashable, Optional, Tuple, Union

from repro.errors import StorageError
from repro.obs.export import config_hash
from repro.store.records import decode_result_pair, encode_result_pair
from repro.store.result_store import ResultStore

logger = logging.getLogger("repro.store")

#: Environment variable carrying the active store path across process
#: boundaries (empty string = persistence explicitly disabled).
STORE_ENV_VAR = "REPRO_RESULT_STORE"

_active: Optional[ResultStore] = None
_configured = False  # an explicit configure()/disable() beats the environment
_env_failed: Optional[str] = None  # a lazy env open that failed; don't retry


def store_key(sim_key: Hashable) -> str:
    """Content-address one simulation key (version-stamped)."""
    from repro._version import __version__

    return config_hash({"sim_key": sim_key, "version": __version__})


def configure(root: Union[str, Path], writable: bool = True) -> ResultStore:
    """Activate a persistent result store for this process tree."""
    global _active, _configured, _env_failed
    store = ResultStore(root, writable=writable)
    _active = store
    _configured = True
    _env_failed = None
    os.environ[STORE_ENV_VAR] = str(store.root)
    logger.info("result store active at %s (%d entries)", store.root, len(store))
    return store


def disable() -> None:
    """Turn persistence off for this process and its future workers."""
    global _active, _configured
    _active = None
    _configured = True
    os.environ[STORE_ENV_VAR] = ""


def deactivate() -> None:
    """Forget any active store *without* poisoning the environment.

    Test hook: returns the module to its import-time state so the
    environment variable (if any) is re-resolved on next use.
    """
    global _active, _configured, _env_failed
    _active = None
    _configured = False
    _env_failed = None
    os.environ.pop(STORE_ENV_VAR, None)


def active() -> Optional[ResultStore]:
    """The store to use right now, or ``None`` for compute-only."""
    global _active, _configured, _env_failed
    if _configured:
        return _active
    env_root = os.environ.get(STORE_ENV_VAR, "")
    if not env_root or env_root == _env_failed:
        return None
    try:
        _active = ResultStore(env_root)
    except StorageError as exc:
        _env_failed = env_root
        logger.warning(
            "cannot open inherited result store %s (%s); continuing compute-only",
            env_root, exc,
        )
        return None
    _configured = True
    return _active


def probe(sim_key: Hashable) -> Optional[Tuple]:
    """Look one simulation key up in the persistent store.

    Returns the decoded ``(LayerResult, DramTraffic)`` pair, or ``None``
    on miss / no store / corrupt entry (already quarantined).
    """
    from repro.obs import trace

    store = active()
    if store is None:
        return None
    key = store_key(sim_key)
    with trace.span("store.probe", category="store", key=key) as span:
        payload = store.get(key)
        span.set(hit=payload is not None)
        if payload is None:
            return None
        try:
            return decode_result_pair(payload)
        except (KeyError, TypeError, ValueError) as exc:
            # The checksum held but the payload shape didn't: quarantine it
            # exactly like low-level corruption and recompute.
            store.quarantine(key, f"undecodable payload ({exc})")
            span.set(hit=False, quarantined=True)
            return None


def record(sim_key: Hashable, value: Tuple) -> bool:
    """Persist one freshly computed result pair (best effort)."""
    from repro.obs import trace

    store = active()
    if store is None or not store.writable:
        return False
    result, traffic = value
    key = store_key(sim_key)
    with trace.span("store.record", category="store", key=key) as span:
        published = store.put(key, encode_result_pair(result, traffic))
        span.set(published=published)
        return published
