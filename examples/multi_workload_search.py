#!/usr/bin/env python
"""Pick one accelerator for many workloads (paper Sec. IV-B).

A deployed accelerator must run every layer well, not just one.  This
example runs the paper's method over the Table IV language models plus
a few ResNet-50 layers:

1. per layer, find the locally runtime-optimal configuration;
2. evaluate each candidate on the *whole* workload set (runtime adds);
3. pick the argmin — and show what each layer pays for the compromise.

Run:  python examples/multi_workload_search.py [total_macs] [--scaleout]
"""

import sys

from repro import WorkloadSet, language_layer, pareto_search, resnet50
from repro.analytical.multiworkload import per_workload_losses

TOTAL_MACS = int(sys.argv[1]) if len(sys.argv) > 1 and sys.argv[1].isdigit() else 2**14
SCALEOUT = "--scaleout" in sys.argv

net = resnet50()
layers = tuple(
    [language_layer(name) for name in ("GNMT0", "GNMT3", "DB1", "TF0", "TF1", "NCF1")]
    + [net["CB2a_3"], net["IB4b_2"]]
)
workloads = WorkloadSet(name="deployment-mix", layers=layers)

kind = "scale-out" if SCALEOUT else "scale-up"
print(f"{len(layers)} workloads, {TOTAL_MACS} MACs, {kind} candidates\n")

best, ranking = pareto_search(workloads, TOTAL_MACS, scaleout=SCALEOUT)

print("candidate ranking (total runtime, normalized to best):")
for rank, (cand, loss) in enumerate(ranking, start=1):
    marker = "  <== chosen" if cand == best else ""
    print(f"  {rank}. {cand.label():42s} {loss:6.2f}x{marker}")

print(f"\nper-workload price of the shared choice ({best.label()}):")
for name, loss in sorted(per_workload_losses(workloads, best).items(), key=lambda kv: -kv[1]):
    bar = "#" * min(60, int((loss - 1) * 20) + 1)
    print(f"  {name:10s} {loss:6.2f}x {bar}")

print("\n1.00x means the layer runs as fast as on its own ideal machine;")
print("higher means it pays for sharing the accelerator with the others.")
