#!/usr/bin/env python
"""Ledger smoke test: the columnar sweep ledger survives its three enemies.

Three drills, each one fatal to a naive result store:

1. **Torn write.**  A child process sweeps with
   ``REPRO_LEDGER_CRASH_POINT=mid-segment-publish`` armed and is killed
   mid-publish, leaving a half-written segment at the final path.  The
   reopen must quarantine the torn file, serve every completed point
   from the fsynced active journal, and an incremental re-sweep must
   finish the grid without re-simulating survivors.
2. **Config-hash change.**  Extending the grid re-simulates only the
   new points; bumping the ledger version (the stand-in for a package
   or config change) invalidates everything and re-simulates the full
   grid — exactly the incremental re-sweep contract.
3. **ENOSPC.**  Segment publishes start failing with "no space left on
   device" mid-sweep.  The ledger degrades to journal-only mode, the
   sweep still completes, and a cold reopen recovers every point.

Run:  PYTHONPATH=src python examples/ledger_smoke.py
Exits non-zero if any drill fails, so CI can gate on it.
"""

import errno
import os
import subprocess
import sys
import tempfile
import textwrap
from pathlib import Path

import repro
from repro import SweepLedger, run_sweep
from repro.errors import StorageError
from repro.store import ledger as ledger_module
from repro.store.ledger import CRASH_POINT_ENV, MODE_JOURNAL

SRC = str(Path(repro.__file__).resolve().parent.parent)

GRID = [1, 2, 4, 8, 16, 32]


def measure(partitions: int) -> dict:
    return {
        "cycles": 1000 * partitions + 17,
        "avg_bw": round(partitions / 3.0, 3),
    }


TORN_CHILD = textwrap.dedent(
    """
    import sys
    from repro import SweepLedger, run_sweep

    def measure(partitions):
        return {
            "cycles": 1000 * partitions + 17,
            "avg_bw": round(partitions / 3.0, 3),
        }

    ledger = SweepLedger(sys.argv[1], version="smoke", segment_entries=3)
    run_sweep(measure, ledger=ledger, incremental=True,
              partitions=[1, 2, 4, 8, 16, 32])
    print("survived")
    """
)


def drill_torn_write(scratch: Path) -> None:
    root = scratch / "torn"
    env = {**os.environ, CRASH_POINT_ENV: "mid-segment-publish", "PYTHONPATH": SRC}
    result = subprocess.run(
        [sys.executable, "-c", TORN_CHILD, str(root)],
        env=env, capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 137, (result.returncode, result.stderr)
    assert "survived" not in result.stdout

    ledger = SweepLedger(root, version="smoke", segment_entries=3)
    assert len(ledger.quarantined()) == 1, ledger.status()
    survivors = [p for p in GRID if ledger.completed({"partitions": p})]
    assert survivors, "active journal lost the completed points"

    calls = []

    def counting(partitions):
        calls.append(partitions)
        return measure(partitions)

    run_sweep(counting, ledger=ledger, incremental=True, partitions=GRID)
    assert sorted(calls) == [p for p in GRID if p not in survivors], calls
    assert ledger.completed_count == len(GRID)
    for p in GRID:
        assert ledger.get({"partitions": p})["rows"] == [
            {"partitions": p, **measure(p)}
        ]
    ledger.close()
    print(
        f"torn write: kill -9 mid-publish, {len(survivors)} point(s) survived, "
        f"{len(calls)} re-simulated, 1 segment quarantined"
    )


def drill_incremental(scratch: Path) -> None:
    root = scratch / "incremental"
    calls = []

    def counting(partitions):
        calls.append(partitions)
        return measure(partitions)

    with SweepLedger(root, version="config-v1") as ledger:
        run_sweep(counting, ledger=ledger, incremental=True, partitions=GRID[:4])
    assert calls == GRID[:4]

    calls.clear()
    with SweepLedger(root, version="config-v1") as ledger:
        run_sweep(counting, ledger=ledger, incremental=True, partitions=GRID)
    assert calls == GRID[4:], f"grid extension re-simulated {calls}"

    calls.clear()
    with SweepLedger(root, version="config-v2") as ledger:
        run_sweep(counting, ledger=ledger, incremental=True, partitions=GRID)
    assert calls == GRID, f"version bump should invalidate everything, got {calls}"
    print(
        f"incremental: grid extension re-ran {len(GRID) - 4}/{len(GRID)} points, "
        f"config-hash change re-ran {len(GRID)}/{len(GRID)}"
    )


def drill_enospc(scratch: Path) -> None:
    root = scratch / "enospc"
    original = ledger_module.atomic_write_bytes

    def full_disk(path, payload):
        raise StorageError(errno.ENOSPC, "No space left on device")

    ledger_module.atomic_write_bytes = full_disk
    try:
        with SweepLedger(root, version="smoke", segment_entries=3) as ledger:
            rows = run_sweep(measure, ledger=ledger, incremental=True,
                             partitions=GRID)
            assert len(rows) == len(GRID)
            status = ledger.status()
            assert status["mode"] == MODE_JOURNAL, status
    finally:
        ledger_module.atomic_write_bytes = original

    with SweepLedger(root, version="smoke") as reopened:
        assert reopened.completed_count == len(GRID), reopened.status()
    print(
        f"enospc: degraded to {MODE_JOURNAL} mode, sweep completed "
        f"{len(GRID)}/{len(GRID)}, cold reopen recovered every point"
    )


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="ledger-smoke-") as scratch:
        drill_torn_write(Path(scratch))
        drill_incremental(Path(scratch))
        drill_enospc(Path(scratch))
    print("ledger smoke: all drills passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
