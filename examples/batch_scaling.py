#!/usr/bin/env python
"""Batching and array size: when does a bigger array need a bigger batch?

Small inference batches starve large arrays: the mapped GEMM's S_R is
too short to fill the rows (or the fold remainder wastes them).  This
example sweeps batch size against array size for a BERT encoder GEMM
and shows utilization/runtime per inference — the practical reason
datacenter accelerators batch aggressively.

Run:  python examples/batch_scaling.py
"""

from repro import HardwareConfig, Simulator
from repro.workloads.bert import bert_encoder

LAYER = bert_encoder(seq=64)["FFN_Up"]  # (64 x 768) @ (768 x 3072)
ARRAYS = [(32, 32), (64, 64), (128, 128)]
BATCHES = [1, 2, 4, 8, 16]

print(f"layer: {LAYER.describe()}\n")
header = f"{'array':>9s} " + "".join(f"batch={b:<3d}        " for b in BATCHES)
print(header)
print("-" * len(header))

for rows, cols in ARRAYS:
    config = HardwareConfig(
        array_rows=rows, array_cols=cols,
        ifmap_sram_kb=512, filter_sram_kb=512, ofmap_sram_kb=256,
    )
    cells = []
    for batch in BATCHES:
        result = Simulator(config).run_layer(LAYER.with_batch(batch))
        per_inference = result.total_cycles / batch
        cells.append(f"{per_inference:8.0f}c {result.compute_utilization:4.0%} ")
    print(f"{rows:>4d}x{cols:<4d} " + "".join(cells))

print(
    "\nEach cell: cycles PER INFERENCE and compute utilization."
    "\nReading down a column: bigger arrays only pay off once the batch"
    "\nis large enough to keep their rows mapped — the scale-up version"
    "\nof the paper's utilization argument for scale-out."
)
