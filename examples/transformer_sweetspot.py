#!/usr/bin/env python
"""Find the runtime/bandwidth sweet spot for a Transformer layer (Fig. 11).

Sweeps the partition count for the TF0 GEMM at a fixed MAC budget with
the paper's SRAM allocation, then checks each configuration's demand
against a concrete DRAM device (the DRAMSim2-stand-in back-end): the
sweet spot is the most-partitioned configuration whose stall-free
bandwidth a real device can still sustain.

Run:  python examples/transformer_sweetspot.py [total_macs]
"""

import sys

from repro import (
    DDR4_2400_LIKE,
    DramSimulator,
    DramTiming,
    ScaleOutSimulator,
    Simulator,
    language_layer,
    paper_scaling_config,
)

TOTAL_MACS = int(sys.argv[1]) if len(sys.argv) > 1 else 2**16
LAYER = language_layer("TF0")

# A beefier device than one DDR4 channel: 16 channels, HBM-ish
# (the paper's point is that scaled-out demand exceeds even this).
DEVICE = DramTiming(num_channels=16)


def square_grid(count):
    rows = 1
    while rows * rows < count:
        rows <<= 1
    return (count // rows, rows)


print(f"TF0 {LAYER.gemm_dims()} at {TOTAL_MACS} MACs, OS dataflow")
print(f"DRAM device peak: {DEVICE.peak_bandwidth:.1f} B/cycle "
      f"({DEVICE.num_channels} channels)\n")
print(f"{'parts':>5s} {'array':>9s} {'cycles':>10s} {'avg BW':>9s} "
      f"{'peak BW':>9s} {'device OK?':>10s}")

dram = DramSimulator(DEVICE)
sweet_spot = None
for count in (1, 4, 16, 64, 256, 1024):
    if TOTAL_MACS % count or TOTAL_MACS // count < 64:
        continue
    shape = square_grid(TOTAL_MACS // count)
    grid = square_grid(count)
    config = paper_scaling_config(shape[0], shape[1], grid[0], grid[1])
    if count == 1:
        result = Simulator(config).run_layer(LAYER)
    else:
        result = ScaleOutSimulator(config).run_layer(LAYER)
    feasible = dram.sustainable(result.avg_total_bw)
    if feasible:
        sweet_spot = (count, result)
    print(
        f"{count:5d} {shape[0]:>4d}x{shape[1]:<4d} {result.total_cycles:10d} "
        f"{result.avg_total_bw:9.1f} {result.peak_total_bw:9.1f} "
        f"{'yes' if feasible else 'NO':>10s}"
    )

if sweet_spot is None:
    print("\neven the monolithic configuration exceeds this device — "
          "lower the MAC budget or add channels")
else:
    count, result = sweet_spot
    print(f"\nsweet spot: {count} partition(s) — fastest configuration the "
          f"device can feed stall-free ({result.total_cycles} cycles at "
          f"{result.avg_total_bw:.1f} B/cycle)")
    print("beyond it, runtime keeps falling but the accelerator would "
          "stall on DRAM — the paper's central scale-out trade-off.")
