#!/usr/bin/env python
"""Scale-up vs scale-out on ResNet-50 (the paper's Sec. IV question).

For a fixed MAC budget, compare:
* the best monolithic array (scale-up, Sec. III-B), and
* the best partitioned grid (scale-out, Sec. III-C),

first with the analytical model (instant, stall-free), then validating
the winner's behaviour with the cycle-accurate engine, including the
DRAM bandwidth price the analytical model cannot see.

Run:  python examples/resnet50_scaling.py [total_macs]
"""

import sys

from repro import (
    ScaleOutSimulator,
    Simulator,
    best_scaleout,
    best_scaleup,
    paper_scaling_config,
)
from repro.workloads import resnet50

TOTAL_MACS = int(sys.argv[1]) if len(sys.argv) > 1 else 2**14

net = resnet50()
layers = [net["Conv1"], net["CB2a_3"], net["IB3b_2"], net["IB5c_3"], net["FC1000"]]

print(f"MAC budget: {TOTAL_MACS} ({TOTAL_MACS.bit_length() - 1} bits)\n")
header = f"{'layer':10s} {'best scale-up':>24s} {'best scale-out':>34s} {'speedup':>8s}"
print(header)
print("-" * len(header))

for layer in layers:
    up = best_scaleup(layer, TOTAL_MACS)
    out = best_scaleout(layer, TOTAL_MACS, min_array_dim=8)
    print(
        f"{layer.name:10s} "
        f"{up.array_rows}x{up.array_cols} @ {up.runtime:>10d} cyc  "
        f"{out.label():>24s} @ {out.runtime:>8d} cyc "
        f"{up.runtime / out.runtime:7.2f}x"
    )

# Validate one layer cycle-accurately and expose the bandwidth cost.
layer = net["CB2a_3"]
up = best_scaleup(layer, TOTAL_MACS)
out = best_scaleout(layer, TOTAL_MACS, min_array_dim=8)

mono_config = paper_scaling_config(up.array_rows, up.array_cols)
mono = Simulator(mono_config).run_layer(layer)

grid_config = paper_scaling_config(
    out.array_rows, out.array_cols, out.partition_rows, out.partition_cols
)
grid = ScaleOutSimulator(grid_config).run_layer(layer)

print(f"\ncycle-accurate check on {layer.name}:")
print(f"  scale-up  {mono_config.describe()}")
print(f"    {mono.total_cycles} cycles, {mono.avg_total_bw:.1f} B/cyc avg DRAM BW")
print(f"  scale-out {grid_config.describe()}")
print(f"    {grid.total_cycles} cycles, {grid.avg_total_bw:.1f} B/cyc avg DRAM BW")
print(
    f"  speedup {mono.total_cycles / grid.total_cycles:.2f}x at "
    f"{grid.avg_total_bw / max(mono.avg_total_bw, 1e-9):.2f}x the bandwidth demand"
)
