#!/usr/bin/env python
"""Quickstart: simulate one conv layer and a small network.

Covers the 90% use case in ~40 lines:

1. describe the hardware (Table I parameters),
2. describe a layer (Table II parameters),
3. run the cycle-accurate simulator,
4. read the report.

Run:  python examples/quickstart.py
"""

from repro import ConvLayer, Dataflow, HardwareConfig, Simulator, render_report
from repro.workloads import alexnet

# 1. Hardware: a 32x32 output-stationary array with double-buffered SRAMs.
config = HardwareConfig(
    array_rows=32,
    array_cols=32,
    ifmap_sram_kb=512,
    filter_sram_kb=512,
    ofmap_sram_kb=256,
    dataflow=Dataflow.OUTPUT_STATIONARY,
)

# 2. Workload: one 3x3 convolution (Table II hyper-parameters).
layer = ConvLayer(
    name="conv3x3",
    ifmap_h=58,
    ifmap_w=58,
    filter_h=3,
    filter_w=3,
    channels=64,
    num_filters=64,
    stride=1,
)

# 3. Simulate.
simulator = Simulator(config)
result = simulator.run_layer(layer)

# 4. Inspect.
print(f"layer:              {layer.describe()}")
print(f"hardware:           {config.describe()}")
print(f"runtime:            {result.total_cycles} cycles")
print(f"array utilization:  {result.mapping_utilization:.1%} mapped, "
      f"{result.compute_utilization:.1%} compute")
print(f"SRAM traffic:       {result.sram.total_reads} reads, "
      f"{result.sram.ofmap_writes} writes")
print(f"DRAM traffic:       {result.dram_read_bytes} B read, "
      f"{result.dram_write_bytes} B written")
print(f"stall-free DRAM BW: {result.avg_total_bw:.2f} B/cycle avg, "
      f"{result.peak_total_bw:.2f} B/cycle peak")

# Bonus: a whole network in one call, reported as a table.
print("\nAlexNet on the same hardware:")
print(render_report(simulator.run_network(alexnet())))
