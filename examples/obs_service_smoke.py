#!/usr/bin/env python
"""Observability smoke test: traces, /metrics, flight recorder, sentinel.

End-to-end drill of the operational observability layer:

1. start the daemon (``repro serve``) as a real subprocess with the
   flight recorder armed;
2. submit a job with a caller-chosen correlation ID and assert the
   daemon echoes it back — the handle that stitches spans and logs
   into one request story;
3. scrape ``GET /metrics``, parse the Prometheus exposition strictly
   and assert the per-job-kind latency summary and the serve counters
   moved;
4. SIGTERM the daemon and assert it exits 0 *and* leaves a flight
   dump recording the drain;
5. run the perf-regression sentinel: ``bench record`` then a clean
   ``bench compare`` (exit 0), then a compare with an injected 5x
   slowdown that must exit 17.

Run:  python examples/obs_service_smoke.py
Exits non-zero if any stage fails, so CI can gate on it.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.serve.client import ServiceClient

REQUEST = {"kind": "gemm", "m": 128, "k": 64, "n": 64, "array": "16x16"}
CORRELATION_ID = "cafe0123beef4567"
EXIT_PERF_REGRESSION = 17


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def repro_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    return env


def start_daemon(flight_dir: Path, port: int) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro",
            "--flight", str(flight_dir),
            "serve", "--port", str(port), "--workers", "2",
        ],
        env=repro_env(),
    )


def wait_healthy(client: ServiceClient, timeout: float = 30.0) -> dict:
    deadline = time.monotonic() + timeout
    while True:
        try:
            return client.health()
        except Exception:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.1)


def stage_correlation(port: int) -> None:
    client = ServiceClient(port=port, client_id="obs-smoke")
    result = client.submit(REQUEST, max_retries=5,
                           correlation_id=CORRELATION_ID)
    assert result["status"] == "ok", result
    assert result["correlation_id"] == CORRELATION_ID, result
    minted = client.submit(REQUEST, max_retries=5)
    assert len(minted["correlation_id"]) == 16, minted
    assert minted["correlation_id"] != CORRELATION_ID
    print(f"correlation OK: caller id echoed, fresh id minted "
          f"({minted['correlation_id']})")


def stage_metrics(port: int) -> None:
    from repro.obs.service import parse_prometheus_text, sample_value

    text = ServiceClient(port=port).metrics_text()
    families = parse_prometheus_text(text)

    assert families["repro_serve_executed_total"]["type"] == "counter"
    assert sample_value(families, "repro_serve_executed_total") >= 1
    assert families["repro_serve_job_seconds"]["type"] == "summary"
    count = next(
        value
        for name, labels, value in families["repro_serve_job_seconds"]["samples"]
        if name == "repro_serve_job_seconds_count" and labels.get("kind") == "gemm"
    )
    assert count >= 1, families["repro_serve_job_seconds"]
    assert sample_value(families, "repro_serve_queue_depth") == 0
    assert sample_value(families, "repro_uptime_seconds") >= 0
    version = families["repro_build_info"]["samples"][0][1]["version"]
    print(f"metrics OK: {len(families)} families, "
          f"gemm jobs={count:g}, version={version}")


def stage_flight_dump(daemon: subprocess.Popen, flight_dir: Path) -> None:
    daemon.send_signal(signal.SIGTERM)
    code = daemon.wait(timeout=60)
    assert code == 0, f"daemon exited {code} on SIGTERM, wanted a clean 0"
    dumps = sorted(flight_dir.glob("flight-*.json"))
    assert dumps, f"no flight dump in {flight_dir} after SIGTERM"
    doc = json.loads(dumps[0].read_text())
    assert doc["schema"] == "repro.flight/1", doc["schema"]
    assert "SIGTERM" in doc["reason"], doc["reason"]
    names = {event.get("name") for event in doc["traceEvents"]}
    assert "serve.request" in names, sorted(names)
    print(f"flight OK: SIGTERM dump {dumps[0].name} with "
          f"{len(doc['traceEvents'])} events")


def stage_bench_sentinel(scratch: Path) -> None:
    history = scratch / "history.jsonl"
    tail = ["--history", str(history), "--benches", "gemm_256",
            "--repeats", "1"]

    def bench(*argv: str) -> int:
        return subprocess.run(
            [sys.executable, "-m", "repro", "bench", *argv],
            env=repro_env(), timeout=300,
        ).returncode

    assert bench("record", *tail, "--note", "smoke baseline") == 0
    assert bench("compare", *tail) == 0
    # the self-test hook: against a synthetic near-zero baseline (so the
    # verdict cannot depend on runner load), the injected slowdown must
    # trip exit 17
    tiny = scratch / "tiny.jsonl"
    tiny.write_text(json.dumps({
        "schema": "repro.bench/1",
        "benches": {"gemm_256": {"wall_time_s": 1e-9, "counters": {}}},
    }) + "\n")
    code = bench("compare", "--history", str(tiny), "--benches", "gemm_256",
                 "--repeats", "1", "--threshold", "0.5",
                 "--inject-slowdown", "5.0", "--noise-floor", "0")
    assert code == EXIT_PERF_REGRESSION, \
        f"injected regression exited {code}, wanted {EXIT_PERF_REGRESSION}"
    print("bench OK: clean compare passed, injected 5x slowdown exited 17")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-obs-smoke-") as scratch:
        flight_dir = Path(scratch) / "flight"
        port = free_port()
        daemon = start_daemon(flight_dir, port)
        try:
            wait_healthy(ServiceClient(port=port))
            stage_correlation(port)
            stage_metrics(port)
            stage_flight_dump(daemon, flight_dir)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=30)
        stage_bench_sentinel(Path(scratch))
    print("observability smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
