#!/usr/bin/env python
"""Roofline view of a whole network: who is compute- vs memory-bound.

Runs ResNet-50's opening layers on a 32x32 array, places each in the
roofline plane for a given DRAM bandwidth, and renders the picture in
plain text.  Layers left of the ridge point are memory-bound — the ones
whose stall-free simulation is optimistic unless the device can feed
them.

Run:  python examples/roofline_analysis.py [bandwidth_bytes_per_cycle]
"""

import sys

from repro import Simulator, paper_scaling_config
from repro.engine.roofline import roofline_point
from repro.engine.summary import summarize_run
from repro.viz import bar_chart
from repro.workloads import resnet50

BANDWIDTH = float(sys.argv[1]) if len(sys.argv) > 1 else 32.0

config = paper_scaling_config(32, 32)
net = resnet50()
head = net.subset(net.layer_names()[:10], name="resnet50-head")
run = Simulator(config).run_network(head)

points = [roofline_point(result, BANDWIDTH) for result in run]
ridge = points[0].ridge_intensity

print(f"machine: {config.describe()}")
print(f"DRAM bandwidth: {BANDWIDTH} B/cycle -> ridge intensity "
      f"{ridge:.1f} MACs/byte\n")

print(f"{'layer':10s} {'MACs/byte':>10s} {'bound':>8s} "
      f"{'achieved':>9s} {'roof':>7s} {'eff':>6s}")
for point in points:
    bound = "compute" if point.compute_bound else "MEMORY"
    print(
        f"{point.layer_name:10s} {point.operational_intensity:10.1f} {bound:>8s} "
        f"{point.achieved_macs_per_cycle:9.1f} {point.attainable:7.1f} "
        f"{point.efficiency:5.1%}"
    )

print("\nachieved MACs/cycle by layer:")
print(bar_chart(
    [point.layer_name for point in points],
    [point.achieved_macs_per_cycle for point in points],
    width=36,
))

print("\nrun summary:")
print(summarize_run(run).describe())
