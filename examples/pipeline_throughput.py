#!/usr/bin/env python
"""Layer pipelining vs data parallelism on the same partition grid.

Given a 4x4 grid of 16x16 arrays, run AlexNet two ways:
* data parallel — every partition helps with the current layer
  (the paper's scale-out);
* pipelined — partitions are divided among layer groups and samples
  stream through.

Prints per-stage assignments, the throughput/latency trade, and when
each mode wins.

Run:  python examples/pipeline_throughput.py [num_stages]
"""

import sys

from repro import paper_scaling_config
from repro.engine.pipeline import run_pipelined
from repro.viz import bar_chart
from repro.workloads import alexnet

NUM_STAGES = int(sys.argv[1]) if len(sys.argv) > 1 else 4

net = alexnet()
config = paper_scaling_config(16, 16, 4, 4)
result = run_pipelined(net, config, num_stages=NUM_STAGES)

print(f"network: {net.name} ({len(net)} layers) on {config.describe()}\n")
print(f"{'stage':>5s} {'partitions':>10s}  layers")
for stage in result.stages:
    print(f"{stage.index:5d} {stage.num_partitions:10d}  {', '.join(stage.layer_names)}")

print("\nstage latencies (pipeline interval = the tallest bar):")
print(bar_chart(
    [f"stage{stage.index}" for stage in result.stages],
    [stage.latency for stage in result.stages],
    width=40,
))

print(f"\ndata parallel, per sample:  {result.serial_cycles} cycles")
print(f"pipelined latency/sample:   {result.latency} cycles "
      f"({result.latency / result.serial_cycles:.2f}x the data-parallel time)")
print(f"pipelined steady interval:  {result.interval} cycles "
      f"-> throughput speedup {result.throughput_speedup:.2f}x")
print(f"stage imbalance:            {result.imbalance:.2f}x "
      "(1.0 = perfectly balanced)")

if result.throughput_speedup > 1:
    print("\npipelining wins on throughput here: the smaller per-stage "
          "grids fold these layers more efficiently.")
else:
    print("\ndata parallelism wins here: the full grid digests each layer "
          "fast enough that pipeline imbalance isn't worth paying.")
