#!/usr/bin/env python
"""Full trace pipeline: SRAM traces -> DRAM trace -> DRAM device replay.

SCALE-Sim's defining feature is its trace-based methodology (Sec. II):
the simulator emits cycle-accurate SRAM read/write traces, derives a
DRAM prefetch schedule from the double-buffer model, and that schedule
can be replayed through a memory simulator (the paper suggests
DRAMSim2; we use the built-in cycle-level DRAM back-end).

This example walks all three stages for one small GEMM and prints what
each produces, ending with whether the device kept up with the
accelerator's demand.

Run:  python examples/trace_to_dram.py
"""

import itertools
import tempfile
from pathlib import Path

from repro import DramSimulator, DramTiming, GemmLayer, HardwareConfig, Simulator
from repro.engine.tracefiles import dram_request_stream, write_sram_trace_csv
from repro.memory.bandwidth import compute_dram_traffic
from repro.memory.buffers import BufferSet

config = HardwareConfig(
    array_rows=8, array_cols=8,
    ifmap_sram_kb=2, filter_sram_kb=2, ofmap_sram_kb=2,  # tiny: forces refetch
)
layer = GemmLayer("demo", m=64, k=48, n=64)
simulator = Simulator(config)

# Stage 1: cycle-accurate SRAM traces (the tool's primary output).
engine = simulator.engine(layer)
layout = simulator.address_layout(layer)
with tempfile.TemporaryDirectory() as tmp:
    read_path, write_path = write_sram_trace_csv(engine, layout, tmp, prefix="demo")
    read_lines = read_path.read_text().splitlines()
    print(f"SRAM read trace: {len(read_lines)} cycle rows, first three:")
    for line in read_lines[:3]:
        print(f"  {line[:76]}{'...' if len(line) > 76 else ''}")

# Stage 2: the double-buffer model turns SRAM traces into DRAM demand.
traffic = compute_dram_traffic(engine, BufferSet.from_config(config), config.word_bytes)
print(f"\nDRAM demand ({engine.plan.num_folds} folds):")
print(f"  ifmap : {traffic.ifmap.total_bytes:6d} B "
      f"(refetch factor {traffic.ifmap.refetch_factor:.2f})")
print(f"  filter: {traffic.filter.total_bytes:6d} B "
      f"(refetch factor {traffic.filter.refetch_factor:.2f})")
print(f"  ofmap : {traffic.write_bytes:6d} B written back")
print(f"  stall-free requirement: {traffic.bandwidth.peak_total_bw:.2f} B/cycle peak, "
      f"{traffic.bandwidth.avg_total_bw:.2f} avg")

# Stage 3: replay the schedule through the cycle-level DRAM model.
requests = list(dram_request_stream(traffic, layout, line_bytes=64))
print(f"\nDRAM trace: {len(requests)} line transfers, first five:")
for request in itertools.islice(requests, 5):
    kind = "WR" if request.is_write else "RD"
    print(f"  cycle {request.cycle:6d}  {kind}  0x{request.address:08x}")

for channels in (1, 2, 4):
    stats = DramSimulator(DramTiming(num_channels=channels)).run(requests)
    # Achieved bandwidth is capped by the arrival rate itself, so a
    # device within a few percent of the demand is keeping up.
    verdict = (
        "keeps up"
        if stats.achieved_bandwidth >= 0.95 * traffic.bandwidth.avg_total_bw
        else "falls behind"
    )
    print(
        f"\n{channels}-channel device: {stats.achieved_bandwidth:.2f} B/cycle achieved "
        f"(row hit rate {stats.row_hit_rate:.0%}, avg latency {stats.avg_latency:.0f} cyc) "
        f"-> {verdict} vs the {traffic.bandwidth.avg_total_bw:.2f} B/cycle demand"
    )
