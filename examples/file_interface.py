#!/usr/bin/env python
"""Drive the simulator exactly like the original SCALE-Sim: from files.

Writes a Table I config INI and a Table II topology CSV to disk, loads
them back, runs the simulation, and emits the report CSV — the complete
file-in/file-out loop of Fig. 2.  Equivalent CLI:

    scalesim-repro run -c my.cfg -t my_net.csv -o out/

Run:  python examples/file_interface.py
"""

import tempfile
from pathlib import Path

from repro import HardwareConfig, Simulator, load_config, load_topology, write_report_csv
from repro.config.parser import dump_config

CONFIG_INI = """\
[general]
run_name = file-demo

[architecture_presets]
ArrayHeight = 16
ArrayWidth = 16
IfmapSramSz = 128
FilterSramSz = 128
OfmapSramSz = 64
IfmapOffset = 0
FilterOffset = 10000000
OfmapOffset = 20000000
Dataflow = os
"""

TOPOLOGY_CSV = """\
Layer name, IFMAP Height, IFMAP Width, Filter Height, Filter Width, Channels, Num Filter, Strides,
Conv1, 34, 34, 3, 3, 3, 32, 1,
Conv2, 18, 18, 3, 3, 32, 64, 1,
FC1, 1, 1, 1, 1, 1024, 10, 1,
"""

with tempfile.TemporaryDirectory() as tmp:
    tmp = Path(tmp)
    (tmp / "demo.cfg").write_text(CONFIG_INI)
    (tmp / "demo_net.csv").write_text(TOPOLOGY_CSV)

    config = load_config(tmp / "demo.cfg")
    network = load_topology(tmp / "demo_net.csv")
    print(f"loaded config:  {config.describe()}")
    print(f"loaded network: {network.describe()}\n")

    run = Simulator(config).run_network(network)
    report_path = write_report_csv(run, tmp / "demo_report.csv")
    print(f"report ({report_path.name}):")
    print(report_path.read_text())

    # And the reverse direction: configs serialize back to disk.
    roundtrip = dump_config(config, tmp / "copy.cfg")
    assert load_config(roundtrip) == config
    print("config round-trips through the INI format unchanged")
