#!/usr/bin/env python
"""Service smoke test: daemon + durable store survive clients and corruption.

End-to-end drill of the durable simulation service:

1. start the daemon (``repro serve``) as a real subprocess with a
   persistent result store;
2. fire two concurrent clients at the *same* workload and assert the
   single-flight table deduplicated them — one simulation, two answers;
3. flip bits in a store entry on disk and assert a fresh compute-side
   process detects the corruption, quarantines the evidence and
   recomputes the identical result;
4. SIGTERM the daemon and assert it drains and exits 0.

Run:  python examples/service_smoke.py
Exits non-zero if any stage fails, so CI can gate on it.
"""

import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.serve.client import ServiceClient
from repro.store.result_store import ResultStore

REQUEST = {"kind": "run", "workload": "TF0", "array": "16x16"}


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def start_daemon(store_root: Path, port: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro",
            "--store", str(store_root),
            "serve", "--port", str(port), "--workers", "2",
        ],
        env=env,
    )


def wait_healthy(client: ServiceClient, timeout: float = 30.0) -> dict:
    deadline = time.monotonic() + timeout
    while True:
        try:
            return client.health()
        except Exception:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.1)


def stage_singleflight(port: int) -> None:
    results = {}

    def fire(name: str) -> None:
        client = ServiceClient(port=port, client_id=name)
        results[name] = client.submit(REQUEST, max_retries=5)

    herd = [threading.Thread(target=fire, args=(f"client-{i}",)) for i in range(2)]
    for thread in herd:
        thread.start()
    for thread in herd:
        thread.join(timeout=300)

    first, second = results["client-0"], results["client-1"]
    assert first["status"] == second["status"] == "ok", results
    assert first["total_cycles"] == second["total_cycles"], "answers diverged"
    assert first["key"] == second["key"], "identical requests keyed differently"

    health = ServiceClient(port=port).health()
    counters = health["counters"]
    dedup = counters["singleflight_joined"] >= 1 and counters["executed"] == 1
    store_hit = health["store"]["hits"] >= 1  # or: second client raced the put
    assert dedup or store_hit, f"no dedup evidence in {counters} / {health['store']}"
    assert health["store"]["writes"] >= 1, "daemon never persisted results"
    print(f"single-flight OK: executed={counters['executed']} "
          f"joined={counters['singleflight_joined']} "
          f"store.writes={health['store']['writes']}")


def stage_corruption(store_root: Path) -> None:
    store = ResultStore(store_root)
    keys = list(store.keys())
    assert keys, "store is empty after the daemon ran"
    reference = {key: store.get(key) for key in keys}
    for key in keys:  # flip a byte in every entry
        path = store.entry_path(key)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x04
        path.write_bytes(bytes(raw))

    # A fresh compute-side process probes the store, detects the damage,
    # quarantines it and recomputes — transparently.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    recompute = subprocess.run(
        [
            sys.executable, "-m", "repro",
            "--store", str(store_root),
            "run", "--workload", "TF0", "--array", "16x16",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert recompute.returncode == 0, recompute.stderr

    healed = ResultStore(store_root)
    status = healed.status()
    assert status["corrupt"] >= len(keys), f"corruption undetected: {status}"
    for key, payload in reference.items():
        assert healed.get(key) == payload, f"recompute not byte-identical for {key}"
    print(f"corruption OK: {status['corrupt']} quarantined, "
          f"{len(reference)} entr(ies) healed byte-identical")


def stage_sigterm(daemon: subprocess.Popen) -> None:
    daemon.send_signal(signal.SIGTERM)
    code = daemon.wait(timeout=60)
    assert code == 0, f"daemon exited {code} on SIGTERM, wanted a clean 0"
    print("sigterm OK: daemon drained and exited 0")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as scratch:
        store_root = Path(scratch) / "store"
        port = free_port()
        daemon = start_daemon(store_root, port)
        try:
            wait_healthy(ServiceClient(port=port))
            stage_singleflight(port)
            stage_corruption(store_root)
            stage_sigterm(daemon)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=30)
    print("service smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
