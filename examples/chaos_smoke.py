#!/usr/bin/env python
"""Chaos smoke test: a parallel ResNet-50 sweep survives worker crashes.

A 2-worker supervised sweep over the Fig. 10 ResNet-50 layers, with
scripted process-level faults attacking the pool mid-run: one layer
SIGKILLs its worker (a simulated segfault/OOM kill) and another
allocates a burst of memory. The supervised pool detects the broken
pool, rebuilds it, resubmits the unfinished points, and the sweep
completes with rows and a checkpoint journal identical to a clean
serial run — the determinism contract under chaos.

Run:  python examples/chaos_smoke.py
Exits non-zero if recovery or determinism fails, so CI can gate on it.

All point callables live at module level so they pickle by reference
into the worker processes.
"""

import json
import sys
import tempfile
from pathlib import Path

from repro import (
    HardwareConfig,
    Simulator,
    SupervisorPolicy,
    WorkerFault,
    inject_worker_faults,
    obs,
    run_sweep,
)
from repro.workloads.resnet50 import fig10_resnet_layers

NETWORK = fig10_resnet_layers()  # first + last 5 conv/FC layers
CONFIG = HardwareConfig(array_rows=32, array_cols=32)
KILLED_LAYER = NETWORK.layer_names()[3]
HOGGED_LAYER = NETWORK.layer_names()[6]


def measure(layer: str) -> dict:
    result = Simulator(CONFIG).run_layer(NETWORK[layer])
    return {
        "cycles": result.total_cycles,
        "utilization": round(result.compute_utilization, 4),
    }


def main() -> int:
    obs.metrics.enable()
    layers = list(NETWORK.layer_names())

    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as scratch:
        serial_journal = Path(scratch) / "serial.jsonl"
        chaos_journal = Path(scratch) / "chaos.jsonl"

        print(f"serial baseline: {len(layers)} ResNet-50 layers on 32x32 ...")
        serial = run_sweep(measure, checkpoint=serial_journal, layer=layers)

        chaotic = inject_worker_faults(
            measure,
            WorkerFault(kind="kill", marker_dir=scratch,
                        when={"layer": KILLED_LAYER}),
            WorkerFault(kind="hog", marker_dir=scratch, hog_mb=200,
                        hold_seconds=0.1, when={"layer": HOGGED_LAYER}),
        )
        print(f"chaos run: 2 workers, SIGKILL on {KILLED_LAYER}, "
              f"200 MiB hog on {HOGGED_LAYER} ...")
        chaos = run_sweep(
            chaotic,
            checkpoint=chaos_journal,
            workers=2,
            supervisor=SupervisorPolicy(poll_interval=0.02, point_timeout=120.0),
            layer=layers,
        )

        counters = obs.metrics.snapshot()["counters"]
        restarts = counters.get("supervisor.restarts", 0)
        crashes = counters.get("supervisor.crashes", 0)
        print(f"recovered: {restarts} pool rebuild(s), "
              f"{crashes} worker crash(es) attributed")

        failures = []
        if chaos != serial:
            failures.append("chaos rows differ from the serial baseline")
        if restarts < 1:
            failures.append("no pool rebuild observed — kill fault never fired?")

        entries = [json.loads(line)
                   for line in chaos_journal.read_text().splitlines()]
        if len(entries) != len(layers):
            failures.append(
                f"journal has {len(entries)} entries, expected {len(layers)}")
        if not all(entry["status"] == "ok" for entry in entries):
            failures.append("journal contains non-ok entries")
        if [entry["params"]["layer"] for entry in entries] != layers:
            failures.append("journal entries out of sweep order")

        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1

    print(f"OK: {len(layers)} layers byte-identical to serial, "
          "journal complete and ordered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
