"""Fig. 9: the scale-up/scale-out design space for TF0.

(a) For each MAC budget, the full space of (partition grid, array
    shape) points with stall-free runtimes normalized to the worst
    configuration at that budget.  Expected shape: the slowest points
    cluster at the monolithic (1 partition) row, and runtime improves
    almost monotonically with partition count.

(b, c) Aspect-ratio sweeps of the *monolithic* configurations at 2^14
    and 2^16 MACs, with runtime and array (mapping) utilization.
    Expected shape: orders of magnitude between best and worst aspect
    ratio (worse for bigger arrays), runtime broadly tracking
    utilization except at extreme rectangles where fill/drain time
    dominates (Eq. 3).

The sweeps live in :mod:`repro.experiments.fig09`.
"""

from __future__ import annotations

from collections import defaultdict

from conftest import PAPER_MAC_BUDGETS, run_once

from repro.experiments.fig09 import fig09a_search_space, fig09bc_aspect_sweep


def test_fig9a_search_space_heatmap(benchmark, reporter):
    rows = run_once(benchmark, fig09a_search_space)
    reporter.emit("tf0 search space", rows)

    # The worst configurations are monolithic at every budget.
    for budget in PAPER_MAC_BUDGETS:
        budget_rows = [row for row in rows if row["macs"] == budget]
        worst = max(budget_rows, key=lambda row: row["runtime"])
        assert worst["num_partitions"] == 1

    # Best runtime per partition count improves (weakly) with partitioning.
    for budget in PAPER_MAC_BUDGETS:
        best_by_count = defaultdict(lambda: float("inf"))
        for row in rows:
            if row["macs"] == budget:
                count = row["num_partitions"]
                best_by_count[count] = min(best_by_count[count], row["runtime"])
        counts = sorted(best_by_count)
        series = [best_by_count[count] for count in counts]
        assert all(later <= earlier for earlier, later in zip(series, series[1:]))


def test_fig9b_aspect_ratios_2e14(benchmark, reporter):
    rows = run_once(benchmark, lambda: fig09bc_aspect_sweep(2**14))
    reporter.emit("monolithic aspect sweep 2^14", rows)
    runtimes = [row["runtime"] for row in rows]
    assert max(runtimes) / min(runtimes) > 10  # orders-of-magnitude spread


def test_fig9c_aspect_ratios_2e16(benchmark, reporter):
    rows14 = fig09bc_aspect_sweep(2**14)
    rows = run_once(benchmark, lambda: fig09bc_aspect_sweep(2**16))
    reporter.emit("monolithic aspect sweep 2^16", rows)
    spread16 = max(row["runtime"] for row in rows) / min(row["runtime"] for row in rows)
    spread14 = max(row["runtime"] for row in rows14) / min(row["runtime"] for row in rows14)
    # Larger arrays exacerbate the best-vs-worst gap (Sec. IV).
    assert spread16 > spread14


def test_fig9_utilization_vs_runtime_relationship(benchmark, reporter):
    """Low utilization comes with high runtime; but among the highest-
    utilization configs, runtime still varies because fill/drain time
    (2R + C - 2) depends on the aspect ratio."""

    def analyse():
        rows = fig09bc_aspect_sweep(2**16)
        best = min(rows, key=lambda row: row["runtime"])
        full_util = [row for row in rows if row["utilization"] > 0.95]
        return {
            "rows": rows,
            "best": best,
            "full_util_spread": (
                max(row["runtime"] for row in full_util) / min(row["runtime"] for row in full_util)
                if len(full_util) > 1
                else 1.0
            ),
        }

    result = run_once(benchmark, analyse)
    reporter.emit(
        "utilization vs runtime 2^16",
        [
            {
                "array": row["array"],
                "utilization": row["utilization"],
                "runtime": row["runtime"],
            }
            for row in result["rows"]
        ],
    )
    assert result["best"]["utilization"] > 0.5
