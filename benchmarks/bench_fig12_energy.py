"""Fig. 12: energy vs partition count.

Same sweep as Fig. 11 (paper SRAM budget, OS dataflow, cycle-accurate
engine) with the event-count energy model applied on top; the sweep
lives in :mod:`repro.experiments.fig12`.

Expected shape (Sec. IV-A): for small MAC budgets (256, 1024, 4096) the
minimum-energy configuration is the monolithic one; as the budget grows
the minimum moves right, toward more partitions — the idle energy saved
by finishing the big array's job sooner outweighs the DRAM energy lost
to reduced reuse.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig12 import (
    energy_optimal_partitions,
    energy_sweep,
    fig12_energy,
)
from repro.workloads.resnet50 import PAPER_CBA3_LAYER, resnet50

SMALL_BUDGETS = [256, 1024, 4096]
ALL_BUDGETS = [256, 1024, 4096, 2**14, 2**16, 2**18]
CBA3 = resnet50()[PAPER_CBA3_LAYER]


def test_fig12_small_budgets_prefer_monolithic(benchmark, reporter):
    def sweep():
        return [row for macs in SMALL_BUDGETS for row in energy_sweep(CBA3, macs)]

    rows = run_once(benchmark, sweep)
    reporter.emit("cba3 energy small budgets", rows)
    optima = energy_optimal_partitions(rows)
    for macs in SMALL_BUDGETS:
        assert optima[macs] == 1


def test_fig12_minimum_moves_right_with_macs(benchmark, reporter):
    rows = run_once(benchmark, lambda: fig12_energy(ALL_BUDGETS))
    reporter.emit("cba3 energy all budgets", rows)
    optima = energy_optimal_partitions(rows)
    # Weakly monotone shift of the energy-optimal partition count.
    series = [optima[macs] for macs in ALL_BUDGETS]
    assert all(later >= earlier for earlier, later in zip(series, series[1:])), optima
    # And the largest budget genuinely prefers partitioning.
    assert optima[2**18] > 1


def test_fig12_energy_components_behave(benchmark, reporter):
    """MAC energy is invariant; DRAM energy rises and idle energy falls
    with the partition count — the two opposing forces of Fig. 12."""

    def sweep():
        return energy_sweep(CBA3, 2**16)

    rows = run_once(benchmark, sweep)
    reporter.emit("cba3 energy components 2^16", rows)
    macs_terms = {row["e_mac"] for row in rows}
    assert len(macs_terms) == 1
    dram_series = [row["e_dram"] for row in rows]
    idle_series = [row["e_idle"] for row in rows]
    assert dram_series == sorted(dram_series)
    assert idle_series == sorted(idle_series, reverse=True)
