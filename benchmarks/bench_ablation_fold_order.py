"""Ablation: fold iteration order (row-major vs column-major).

DESIGN.md calls out the fold-order choice as a modelling decision:
SCALE-Sim executes folds row-major, which keeps the IFMAP-side operand
resident across the inner loop and re-streams the filter-side operand
once per row fold.  This ablation transposes the loop nest and measures
the DRAM read traffic both ways.

Expected shape: runtime is identical in both orders; traffic is not.
With the paper's 512 KB buffers the decisive question is which operand
*fails to fit on chip* — the winning order is the one that fetches that
operand's slices exactly once (TF0's huge IFMAP wants row order, 31x;
DB1's huge filter wants column order, 2x; layers whose operands both
fit are order-insensitive).
"""

from __future__ import annotations

from conftest import run_once

from repro.config.presets import paper_scaling_config
from repro.engine.simulator import Simulator
from repro.workloads.language import language_layer

CONFIG = paper_scaling_config(32, 32)

LAYERS = [
    language_layer("TF0"),   # IFMAP ~2.6 MB off-chip, filter 86 KB on-chip
    language_layer("DB1"),   # filter ~10 MB off-chip, IFMAP 89 KB on-chip
    language_layer("GNMT0"),  # both large; row order mildly ahead
    language_layer("NCF1"),  # both fit: order-insensitive
]


def test_fold_order_ablation(benchmark, reporter):
    def sweep():
        rows = []
        for layer in LAYERS:
            row_sim = Simulator(CONFIG, loop_order="row").run_layer(layer)
            col_sim = Simulator(CONFIG, loop_order="col").run_layer(layer)
            assert row_sim.total_cycles == col_sim.total_cycles
            rows.append(
                {
                    "layer": layer.name,
                    "gemm": "x".join(map(str, layer.gemm_dims())),
                    "cycles": row_sim.total_cycles,
                    "row_order_rd_bytes": row_sim.dram_read_bytes,
                    "col_order_rd_bytes": col_sim.dram_read_bytes,
                    "col_over_row": round(
                        col_sim.dram_read_bytes / row_sim.dram_read_bytes, 3
                    ),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    reporter.emit("row vs col order", rows)

    by_layer = {row["layer"]: row for row in rows}
    # Off-chip IFMAP: the default row order protects it (dramatically).
    assert by_layer["TF0"]["col_over_row"] > 10
    # Off-chip filter: transposing the loops wins.
    assert by_layer["DB1"]["col_over_row"] < 0.7
    # Everything on chip: the order is irrelevant.
    assert by_layer["NCF1"]["col_over_row"] == 1.0


def test_fold_order_best_of_both(benchmark, reporter):
    """How much a per-layer order choice saves over always-row —
    quantifying the value of making the loop order schedulable."""

    def sweep():
        rows = []
        for layer in LAYERS:
            row_bytes = Simulator(CONFIG, loop_order="row").run_layer(layer).dram_read_bytes
            col_bytes = Simulator(CONFIG, loop_order="col").run_layer(layer).dram_read_bytes
            rows.append(
                {
                    "layer": layer.name,
                    "always_row": row_bytes,
                    "best_choice": min(row_bytes, col_bytes),
                    "saving": round(1 - min(row_bytes, col_bytes) / row_bytes, 4),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    reporter.emit("adaptive order savings", rows)
    assert any(row["saving"] > 0.3 for row in rows)  # DB1's filter
    assert all(row["saving"] >= 0 for row in rows)
