"""Fig. 10: best scale-up runtime / best scale-out runtime.

The paper plots, per layer and MAC budget, the stall-free runtime of
the fastest monolithic configuration normalized to the fastest
partitioned configuration (equal MAC budgets, arrays at least 8x8 when
partitioned).  The sweep lives in :mod:`repro.experiments.fig10`.

Expected shape (Sec. IV):
* the ratio is (essentially) never below 1 — monolithic never wins;
* for a given layer the ratio tends to grow with the MAC budget
  (slowdown "amplifies when the hardware is scaled");
* some layers are dramatic (the paper reports ~25x for an early ResNet
  conv block and up to ~50x for language layers at 65536 MACs).

Known deviation (documented in EXPERIMENTS.md): for degenerate
matrix-vector layers (S_R = 1, e.g. FC1000/NCF0) at small budgets, the
8x8 array floor forces partitioned configs to waste rows, so the
monolithic 1xC array can win outright; small (<3%) dips also occur
when ceil-tiling leaves remainder tiles.  We therefore assert
ratio >= 0.95 for non-degenerate layers everywhere and strictly >= 1
once the budget reaches 2^16.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig10 import fig10a_resnet, fig10b_language


def _check_ratios(rows):
    for row in rows:
        if row["degenerate"]:
            continue  # matrix-vector layers: see module docstring
        assert row["ratio"] >= 0.95, row
        if row["macs"] >= 2**16:
            assert row["ratio"] >= 1.0, row


def test_fig10a_resnet_layers(benchmark, reporter):
    rows = run_once(benchmark, fig10a_resnet)
    reporter.emit("resnet50 first-last-5", rows)

    _check_ratios(rows)
    # Scaling amplifies the gap for at least one early conv layer.
    conv1 = [row for row in rows if row["layer"] == "Conv1"]
    assert conv1[-1]["ratio"] >= conv1[0]["ratio"]
    assert max(row["ratio"] for row in rows) > 2


def test_fig10b_language_layers(benchmark, reporter):
    rows = run_once(benchmark, fig10b_language)
    reporter.emit("language models", rows)

    _check_ratios(rows)
    at_64k = [row for row in rows if row["macs"] == 2**16]
    # The paper's headline: an order of magnitude or more for the most
    # partition-friendly layers at 64K MACs.
    assert max(row["ratio"] for row in at_64k) > 10

    # Per-layer ratios are (weakly) non-decreasing in the budget for
    # most layers; assert it for the extreme ones the paper highlights.
    for name in ("TF0", "NCF0", "GNMT3"):
        series = [row["ratio"] for row in rows if row["layer"] == name]
        assert series[-1] >= series[0]
