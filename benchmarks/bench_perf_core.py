"""Perf core: result cache, closed-form folds and multiprocess sweeps.

This benchmark measures the PR's three optimizations on the paper's own
workloads and records honest numbers:

* ResNet-50 scale-up: a memoized re-run against a cold, cache-disabled
  run (the cache serves repeated conv shapes — ResNet-50's residual
  stages reuse the same GEMMs many times);
* ResNet-50 scale-out partition sweep: serial vs ``workers=2``, which
  must produce byte-identical rows (the speedup column is honest about
  the host: on a single-core CI container process-pool overhead can
  exceed the win, so only correctness is asserted).

Each series lands in ``results/`` as CSV; ``run_once`` stamps wall time
and counter deltas into ``results/perf/`` as JSON.
"""

from __future__ import annotations

import functools
import os
import time

from conftest import run_once

from repro.serve.jobs import sweep_measure
from repro.config.presets import paper_scaling_config
from repro.engine.simulator import Simulator
from repro.perf.cache import cache
from repro.sweep import run_sweep
from repro.workloads import get_workload
from repro.workloads.language import language_layer

#: Partition counts of the scale-out sweep (power-of-four ladder).
SWEEP_PARTITIONS = [1, 4, 16, 64]
SWEEP_MACS = 2**14


def test_resnet50_scaleup_cache_speedup(benchmark, reporter):
    network = get_workload("resnet50")
    config = paper_scaling_config(64, 64)

    cache.reset()
    cache.disable()
    start = time.perf_counter()
    baseline = Simulator(config).run_network(network)
    cold_s = time.perf_counter() - start

    cache.reset()
    start = time.perf_counter()
    populate = Simulator(config).run_network(network)
    populate_s = time.perf_counter() - start
    populate_info = cache.info()

    start = time.perf_counter()
    warm = run_once(benchmark, lambda: Simulator(config).run_network(network))
    warm_s = time.perf_counter() - start
    warm_info = cache.info()

    # The cache must be semantically invisible across the full topology.
    assert populate.layers == baseline.layers
    assert warm.layers == baseline.layers
    # ResNet-50 repeats conv shapes: even the populating run hits.
    assert populate_info["hits"] > 0
    # The warm run resolves every layer from the cache.
    assert warm_info["hits"] - populate_info["hits"] == len(warm.layers)
    assert warm_info["misses"] == populate_info["misses"]
    assert warm_s < cold_s, "a fully memoized run must beat a cold one"

    reporter.emit(
        "resnet50 scaleup cache speedup",
        [
            {"mode": "cache disabled", "wall_time_s": round(cold_s, 4), "speedup": 1.0},
            {
                "mode": "cache cold (populating)",
                "wall_time_s": round(populate_s, 4),
                "speedup": round(cold_s / populate_s, 3),
            },
            {
                "mode": "cache warm",
                "wall_time_s": round(warm_s, 4),
                "speedup": round(cold_s / warm_s, 3),
            },
        ],
    )
    cache.reset()


def test_resnet50_scaleout_parallel_sweep(benchmark, reporter):
    layer = get_workload("resnet50")[9]  # a mid-network conv block
    fn = functools.partial(sweep_measure, layer=layer, macs=SWEEP_MACS)

    cache.reset()
    start = time.perf_counter()
    serial = run_sweep(fn, partitions=SWEEP_PARTITIONS)
    serial_s = time.perf_counter() - start

    cache.reset()
    start = time.perf_counter()
    parallel = run_once(
        benchmark, lambda: run_sweep(fn, partitions=SWEEP_PARTITIONS, workers=2)
    )
    parallel_s = time.perf_counter() - start

    assert parallel == serial, "workers=2 must reproduce the serial rows exactly"

    reporter.emit(
        "resnet50 scaleout serial vs workers2",
        [
            {
                "mode": "serial",
                "wall_time_s": round(serial_s, 4),
                "cpu_count": os.cpu_count(),
                "rows": len(serial),
            },
            {
                "mode": "workers=2",
                "wall_time_s": round(parallel_s, 4),
                "cpu_count": os.cpu_count(),
                "rows": len(parallel),
            },
        ],
    )
    cache.reset()


def test_tf0_sweep_closed_form_consistency(benchmark, reporter):
    """The TF0 partition sweep runs entirely on the closed-form fold
    path; spot-check its figures stay internally consistent."""
    layer = language_layer("TF0")
    fn = functools.partial(sweep_measure, layer=layer, macs=2**16)

    cache.reset()
    rows = run_once(benchmark, lambda: run_sweep(fn, partitions=[1, 4, 16, 64, 256]))
    cycles = [row["cycles"] for row in rows]
    assert cycles == sorted(cycles, reverse=True), "runtime falls with partitions"
    bandwidth = [row["avg_bw"] for row in rows]
    assert bandwidth == sorted(bandwidth), "BW demand rises with partitions"
    reporter.emit("tf0 partition sweep closed form", rows)
    cache.reset()
