"""Extension: the runtime/bandwidth/energy pareto front, machine-checked.

The paper's abstract promises to "identify sweet spots for various
workloads and hardware configurations" — Figs. 11/12 do it by eyeball.
This extension computes the three-objective (runtime, DRAM bytes,
energy) pareto front over the full Fig. 9a design space using the
closed-form scoring models, for TF0 and a ResNet-50 layer.

Expected shape: the front is a small fraction of the space; its
runtime-sorted traversal moves from many-partition configs (fast,
bandwidth-hungry) toward monolithic ones (slow, frugal) — the same
trade-off Figs. 11/12 show, now as one non-dominated set.
"""

from __future__ import annotations

from conftest import run_once

from repro.analytical.objectives import pareto_front, score_candidates
from repro.analytical.search import search_space
from repro.workloads.language import language_layer
from repro.workloads.resnet50 import PAPER_CBA3_LAYER, resnet50

TOTAL_MACS = 2**14
LAYERS = [language_layer("TF0"), resnet50()[PAPER_CBA3_LAYER]]


def test_pareto_front_over_fig9_space(benchmark, reporter):
    def run():
        rows = []
        for layer in LAYERS:
            candidates = search_space(layer, TOTAL_MACS, min_array_dim=8)
            scores = score_candidates(layer, candidates)
            front = pareto_front(scores)
            for rank, score in enumerate(front, start=1):
                rows.append(
                    {
                        "layer": layer.name,
                        "rank": rank,
                        "config": score.candidate.label(),
                        "partitions": score.candidate.num_partitions,
                        "runtime": score.runtime,
                        "dram_bytes": score.dram_bytes,
                        "avg_bw": round(score.avg_bandwidth, 2),
                        "energy": round(score.energy, 1),
                        "space_size": len(scores),
                    }
                )
        return rows

    rows = run_once(benchmark, run)
    reporter.emit("three-objective front", rows)

    for layer in LAYERS:
        front_rows = [row for row in rows if row["layer"] == layer.name]
        space_size = front_rows[0]["space_size"]
        # The front prunes the space meaningfully.
        assert 1 <= len(front_rows) < space_size
        # Fast end uses more partitions than the frugal end.
        assert front_rows[0]["partitions"] >= front_rows[-1]["partitions"]
        # Bandwidth falls as we walk toward the slow/frugal end.
        bandwidths = [row["avg_bw"] for row in front_rows]
        assert bandwidths[0] >= bandwidths[-1]
