"""Extension: how much DRAM traffic inter-layer forwarding removes.

The paper treats each layer independently (cold IFMAP fetch per layer);
Tangram/Simba-style designs forward one layer's OFMAP to the next on
chip.  This extension measures the saving on AlexNet-like chained conv
stacks as a function of the OFMAP SRAM size.

Expected shape: savings grow with the OFMAP buffer (more layers'
outputs fit) and saturate at the fraction of traffic that is
chain-eligible; with a tiny buffer the saving is zero.
"""

from __future__ import annotations

from conftest import run_once

from repro.config.hardware import HardwareConfig
from repro.engine.interlayer import interlayer_savings
from repro.engine.simulator import Simulator
from repro.topology.layer import ConvLayer
from repro.topology.network import Network

OFMAP_KB_SWEEP = [1, 8, 64, 512, 4096]


def chained_stack() -> Network:
    """A five-conv stack whose tensors chain end to end."""
    layers = []
    side, channels = 34, 8
    for index in range(5):
        out_channels = channels * 2 if index % 2 else channels
        layers.append(
            ConvLayer(
                name=f"conv{index}",
                ifmap_h=side, ifmap_w=side, filter_h=3, filter_w=3,
                channels=channels, num_filters=out_channels, stride=1,
            )
        )
        side -= 2
        channels = out_channels
    return Network("chained-stack", layers)


def test_interlayer_savings_vs_ofmap_sram(benchmark, reporter):
    net = chained_stack()

    def run():
        rows = []
        for ofmap_kb in OFMAP_KB_SWEEP:
            config = HardwareConfig(
                array_rows=16, array_cols=16,
                ifmap_sram_kb=256, filter_sram_kb=256, ofmap_sram_kb=ofmap_kb,
            )
            simulator = Simulator(config)
            saving = interlayer_savings(simulator, net)
            rows.append(
                {
                    "ofmap_sram_kb": ofmap_kb,
                    "dram_traffic_saved": round(saving, 4),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    reporter.emit("savings vs ofmap sram", rows)

    savings = [row["dram_traffic_saved"] for row in rows]
    assert savings == sorted(savings)  # bigger buffer never hurts
    assert savings[0] == 0.0  # 1 KB holds nothing
    assert savings[-1] > 0.15  # real savings once everything fits
