"""Extension: layer pipelining vs data parallelism on one grid.

The paper's scale-out is data-parallel (every partition works on the
current layer).  Tangram/Simba-style systems pipeline layer groups
across partition groups instead.  This extension runs both modes on the
same grids and compares steady-state throughput.

Expected shape: data parallelism wins when layers fold cleanly onto the
full grid; pipelining wins (throughput_speedup > 1) when per-layer
tiles leave the big grid underutilized — and its advantage grows with
the stage count until imbalance eats it.
"""

from __future__ import annotations

from conftest import run_once

from repro.config.presets import paper_scaling_config
from repro.engine.pipeline import run_pipelined
from repro.workloads.alexnet import alexnet
from repro.workloads.resnet50 import resnet50

GRID = paper_scaling_config(16, 16, 4, 4)  # 16 partitions, 4096 MACs
STAGE_COUNTS = [1, 2, 4, 8]


def test_pipeline_vs_data_parallel(benchmark, reporter):
    def run():
        rows = []
        for name, network in (("alexnet", alexnet()), ("resnet50-head", None)):
            if network is None:
                full = resnet50()
                network = full.subset(full.layer_names()[:12], name="resnet50-head")
            for num_stages in STAGE_COUNTS:
                result = run_pipelined(network, GRID, num_stages=num_stages)
                rows.append(
                    {
                        "network": network.name,
                        "stages": num_stages,
                        "interval": result.interval,
                        "latency": result.latency,
                        "serial_cycles": result.serial_cycles,
                        "throughput_speedup": round(result.throughput_speedup, 3),
                        "imbalance": round(result.imbalance, 3),
                    }
                )
        return rows

    rows = run_once(benchmark, run)
    reporter.emit("pipeline vs data parallel", rows)

    for network in {row["network"] for row in rows}:
        series = [row for row in rows if row["network"] == network]
        # One stage IS data parallelism.
        assert series[0]["throughput_speedup"] == 1.0
        # Latency per sample never beats the full grid's serial run by
        # much (stages use smaller grids), while interval may.
        for row in series:
            assert row["interval"] <= row["latency"]
            assert row["imbalance"] >= 1.0
    # Somewhere in the sweep pipelining actually pays.
    assert any(row["throughput_speedup"] > 1.0 for row in rows)
