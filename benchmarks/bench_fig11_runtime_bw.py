"""Fig. 11: runtime and DRAM bandwidth vs partition count (cycle-accurate).

The paper sweeps the number of partitions for the CBa_3 layer of
ResNet-50 (a-c) and the TF0 layer of the Transformer (d-f) at 2^18,
2^16 and 2^14 total MAC units, with 512 KB IFMAP + 512 KB filter +
256 KB OFMAP SRAM divided evenly among the partitions, running the
output-stationary dataflow on the cycle-accurate simulator.  The sweep
lives in :mod:`repro.experiments.fig11`.

Expected shape:
* runtime falls monotonically as partitions increase;
* stall-free DRAM bandwidth demand rises monotonically (loss of array-
  internal reuse plus data replication across partitions);
* the "sweet spot" is where the curves cross; at 2^18 MACs the demand
  near the sweet spot is of order 10 KB/cycle — far beyond commodity
  DRAM (the paper's headline observation).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig11 import (
    DEFAULT_BUDGETS,
    fig11_resnet_cba3,
    fig11_transformer_tf0,
    partition_sweep,
)
from repro.workloads.language import language_layer


def _check_shape(rows):
    cycles = [row["cycles"] for row in rows]
    bandwidth = [row["avg_bw_B_per_cyc"] for row in rows]
    assert cycles == sorted(cycles, reverse=True), "runtime must fall with partitions"
    assert bandwidth == sorted(bandwidth), "BW demand must rise with partitions"


def test_fig11abc_resnet_cba3(benchmark, reporter):
    rows = run_once(benchmark, fig11_resnet_cba3)
    reporter.emit("cba3 partition sweep", rows)
    for macs in DEFAULT_BUDGETS:
        _check_shape([row for row in rows if row["macs"] == macs])


def test_fig11def_transformer_tf0(benchmark, reporter):
    rows = run_once(benchmark, fig11_transformer_tf0)
    reporter.emit("tf0 partition sweep", rows)
    for macs in DEFAULT_BUDGETS:
        _check_shape([row for row in rows if row["macs"] == macs])

    # Paper: at 2^18 MACs, ~10 KB/cycle is demanded near the sweet spot.
    heavy = [row for row in rows if row["macs"] == 2**18 and row["partitions"] >= 256]
    assert max(row["avg_bw_B_per_cyc"] for row in heavy) > 8 * 1024


def test_fig11_sweet_spot_moves_right_with_macs(benchmark, reporter):
    """The runtime/BW crossing shifts toward more partitions as the MAC
    budget grows: bigger systems want more partitions before bandwidth
    becomes the binding constraint relative to their runtime gains."""
    tf0 = language_layer("TF0")

    def analyse():
        rows = []
        for macs in DEFAULT_BUDGETS:
            sweep = partition_sweep(tf0, macs)
            base = sweep[0]
            for row in sweep:
                speedup = base["cycles"] / row["cycles"]
                bw_cost = row["avg_bw_B_per_cyc"] / max(base["avg_bw_B_per_cyc"], 1e-9)
                rows.append(
                    {
                        "macs": macs,
                        "partitions": row["partitions"],
                        "speedup": round(speedup, 3),
                        "bw_cost": round(bw_cost, 3),
                        "speedup_per_bw": round(speedup / bw_cost, 4),
                    }
                )
        return rows

    rows = run_once(benchmark, analyse)
    reporter.emit("tf0 speedup vs bw cost", rows)
    assert all(row["speedup"] >= 1.0 for row in rows)
