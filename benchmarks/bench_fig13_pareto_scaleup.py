"""Fig. 13: multi-workload performance loss, scale-up candidates.

Sec. IV-B: for each MAC budget, take every layer's locally optimal
monolithic aspect ratio as a candidate, evaluate every candidate on the
*whole* workload set (runtime is additive), and normalize to the
pareto-optimal candidate.  The paper plots the loss of the fastest,
2nd, 3rd, 4th and slowest candidates for ResNet-50 and for the language
models.  The rankings live in :mod:`repro.experiments.fig13`.

Expected shape: the 2nd/3rd best candidates are close to optimal
(within tens of percent) at small budgets; the spread widens with the
budget, with the slowest candidates several-fold worse (up to ~8x).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig13 import SCALEUP_BUDGETS, fig13_language, fig13_resnet


def _spread(rows, budget):
    return max(row["perf_loss"] for row in rows if row["macs"] == budget)


def test_fig13_resnet50(benchmark, reporter):
    rows = run_once(benchmark, fig13_resnet)
    reporter.emit("resnet50 scaleup losses", rows)

    assert all(row["perf_loss"] >= 1.0 for row in rows)
    for budget in SCALEUP_BUDGETS:
        best_rows = [row for row in rows if row["macs"] == budget and row["rank"] == 1]
        assert best_rows[0]["perf_loss"] == 1.0


def test_fig13_language_models(benchmark, reporter):
    rows = run_once(benchmark, fig13_language)
    reporter.emit("language scaleup losses", rows)

    assert all(row["perf_loss"] >= 1.0 for row in rows)
    # At the smallest budget the runners-up are close to optimal (the
    # paper: "within 20% for smaller number of MACs")...
    smallest = sorted(
        row["perf_loss"] for row in rows if row["macs"] == SCALEUP_BUDGETS[0]
    )
    assert smallest[1] <= 1.2
    # ...while the slowest candidates pay multi-fold penalties (the
    # paper reports up to ~8x); the exact budget where the spread peaks
    # depends on the candidate set, so assert the magnitude, not the
    # position.
    assert max(_spread(rows, budget) for budget in SCALEUP_BUDGETS) > 3.0
    assert _spread(rows, 2**16) > 2.0
