"""Extension: reuse-distance profiles vs the double-buffer model.

The double-buffer reuse model (Sec. II / DESIGN.md) predicts DRAM
traffic from fold-level slice residency.  An independent check: compute
the *exact LRU reuse-distance profile* of the engine's address stream
and ask what hit rate an ideally-managed buffer of the same capacity
would get.  The slice-managed double buffer cannot beat the LRU oracle;
it should land in the same regime.

Expected shape: the LRU hit-rate-vs-capacity curve is a staircase whose
knees sit at the operand slice sizes; once capacity covers the row
block, warm accesses all hit — exactly where the fold model switches
from re-fetch to reuse.
"""

from __future__ import annotations

from conftest import run_once

from repro.config.hardware import Dataflow, HardwareConfig
from repro.dataflow.base import AddressLayout
from repro.dataflow.factory import engine_for_gemm
from repro.memory.bandwidth import compute_dram_traffic
from repro.memory.buffers import BufferSet
from repro.traceanalysis.reuse import reuse_profile
from repro.traceanalysis.streams import stream_addresses

M, K, N = 64, 16, 64
ROWS = COLS = 8


def test_lru_oracle_vs_fold_model(benchmark, reporter):
    engine = engine_for_gemm(M, K, N, Dataflow.OUTPUT_STATIONARY, ROWS, COLS)
    layout = AddressLayout(m=M, k=K, n=N)

    def run():
        profile = reuse_profile(list(stream_addresses(engine, layout, "ifmap")))
        slice_elements = ROWS * K  # the row block the fold model keeps
        rows = []
        for capacity in (1, slice_elements // 2, slice_elements, 2 * slice_elements, M * K):
            rows.append(
                {
                    "lru_capacity_elems": capacity,
                    "hit_rate": round(profile.hit_rate(capacity), 4),
                }
            )
        return {"rows": rows, "profile": profile, "slice": slice_elements}

    outcome = run_once(benchmark, run)
    reporter.emit("ifmap lru staircase", outcome["rows"])
    profile = outcome["profile"]
    slice_elements = outcome["slice"]

    # Cold misses equal the operand footprint.
    assert profile.unique_addresses == M * K
    # Capacity >= one row block captures ALL warm reuse (the knee).
    assert profile.hits_with_capacity(slice_elements) == profile.warm
    # Well below the slice, the stream thrashes LRU completely.
    assert profile.hit_rate(2) == 0.0

    # The fold model's DRAM reads equal cold misses when its buffer
    # holds a slice: the two independent models meet at the knee.
    kb = max(1, (2 * slice_elements) // 1024 + 1)
    config = HardwareConfig(
        array_rows=ROWS, array_cols=COLS,
        ifmap_sram_kb=kb, filter_sram_kb=kb, ofmap_sram_kb=kb,
    )
    traffic = compute_dram_traffic(engine, BufferSet.from_config(config), 1)
    assert traffic.ifmap.total_bytes == profile.unique_addresses


def test_tensor_space_reuse_exceeds_matrix_space(benchmark, reporter):
    """The im2col view: overlapping windows add reuse the matrix-space
    stream cannot see — quantified via the two profiles."""
    from repro.dataflow.factory import engine_for
    from repro.topology.layer import ConvLayer
    from repro.topology.lowering import TensorAddressLayout

    layer = ConvLayer(
        name="c", ifmap_h=10, ifmap_w=10, filter_h=3, filter_w=3,
        channels=2, num_filters=8, stride=1,
    )
    engine = engine_for(layer, Dataflow.OUTPUT_STATIONARY, 8, 8)

    def run():
        matrix_layout = AddressLayout(m=layer.gemm_m, k=layer.gemm_k, n=layer.gemm_n)
        tensor_layout = TensorAddressLayout(layer)
        matrix = reuse_profile(list(stream_addresses(engine, matrix_layout, "ifmap")))
        tensor = reuse_profile(list(stream_addresses(engine, tensor_layout, "ifmap")))
        return [
            {
                "view": "matrix (lowered)",
                "accesses": matrix.accesses,
                "unique": matrix.unique_addresses,
                "warm_fraction": round(matrix.warm / matrix.accesses, 4),
            },
            {
                "view": "tensor (im2col)",
                "accesses": tensor.accesses,
                "unique": tensor.unique_addresses,
                "warm_fraction": round(tensor.warm / tensor.accesses, 4),
            },
        ]

    rows = run_once(benchmark, run)
    reporter.emit("matrix vs tensor reuse", rows)
    matrix, tensor = rows
    assert tensor["accesses"] == matrix["accesses"]
    assert tensor["unique"] < matrix["unique"]
    assert tensor["warm_fraction"] > matrix["warm_fraction"]
