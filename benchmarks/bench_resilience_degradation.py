"""Graceful degradation: runtime and energy vs dead partitions.

Not a paper figure — a scalability question the paper's methodology
makes easy to ask.  For each fault count ``k`` the sweep kills ``k`` of
the 16 partitions, re-maps the orphaned tiles onto the survivors, and
measures the slowdown against the closed-form degraded bound
``ceil(P / (P - k))``.

Expected shape: a staircase.  Runtime is flat while the survivors can
absorb the orphans without anyone owning two extra tiles, then jumps a
whole multiple of the healthy runtime.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.resilience import degradation_sweep
from repro.workloads.resnet50 import PAPER_CBA3_LAYER, resnet50

CBA3 = resnet50()[PAPER_CBA3_LAYER]
DEAD_COUNTS = (0, 1, 2, 4, 8)


def test_degradation_staircase(benchmark, reporter):
    def sweep():
        return degradation_sweep(CBA3, total_macs=2**14, partitions=16,
                                 dead_counts=DEAD_COUNTS)

    rows = run_once(benchmark, sweep)
    reporter.emit("cba3 degradation 16 partitions", rows)

    slowdowns = [row["slowdown"] for row in rows]
    assert slowdowns[0] == 1.0
    assert slowdowns == sorted(slowdowns)
    # Killing half the grid at least doubles the runtime.
    assert slowdowns[-1] >= 2.0
    # Engine never beats physics: measured cycles within the serial bound.
    for row in rows:
        assert row["cycles"] <= row["bound_cycles"]
    # Every degraded scenario re-mapped exactly the orphaned tiles.
    for row in rows[1:]:
        assert row["remapped_tiles"] >= row["dead"]
