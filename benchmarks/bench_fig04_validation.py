"""Fig. 4: validating the simulator's cycle counts.

The paper compares SCALE-Sim against an RTL systolic array on matrix
multiplications "on varying array sizes under full utilization with OS
dataflow" and finds the counts in good agreement.  Our RTL stand-in is
the register-level golden model (DESIGN.md); the sweep lives in
:func:`repro.experiments.fig04.fig04_validation`.

Expected shape: all three cycle counts (trace engine, golden model,
Eq. 1) identical for every size — the paper's two series lie on top of
each other.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.config.hardware import Dataflow
from repro.dataflow.factory import engine_for_gemm
from repro.experiments.fig04 import fig04_validation
from repro.golden.gemm import golden_gemm


def test_fig4_simulator_vs_rtl_standin(benchmark, reporter):
    rows = run_once(benchmark, fig04_validation)
    reporter.emit("sim vs rtl cycles", rows)
    for row in rows:
        assert row["sim_cycles"] == row["rtl_cycles"] == row["eq1_cycles"]


def test_fig4_agreement_extends_to_folded_arrays(benchmark, reporter):
    """Beyond the paper's single-fold validation: agreement also holds
    when the workload folds over a smaller array."""

    def sweep():
        rows = []
        rng = np.random.default_rng(7)
        for size, array in [(16, 8), (24, 8), (32, 16), (48, 16)]:
            engine = engine_for_gemm(size, size, size, Dataflow.OUTPUT_STATIONARY, array, array)
            a = rng.integers(-8, 8, (size, size))
            b = rng.integers(-8, 8, (size, size))
            golden = golden_gemm(a, b, Dataflow.OUTPUT_STATIONARY, array, array)
            rows.append(
                {
                    "gemm": f"{size}^3",
                    "array": f"{array}x{array}",
                    "sim_cycles": engine.total_cycles(),
                    "rtl_cycles": golden.cycles,
                    "folds": golden.num_folds,
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    reporter.emit("folded agreement", rows)
    for row in rows:
        assert row["sim_cycles"] == row["rtl_cycles"]
