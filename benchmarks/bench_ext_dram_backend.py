"""Extension: replay SCALE-Sim DRAM traces through the device model.

Sec. II-B says the generated interface traffic "can then be fed into a
DRAM simulator e.g. DRAMSim2"; the paper never runs that experiment.
This extension does, with the built-in cycle-level back-end: lower one
layer's double-buffer prefetch schedule into a timed request stream and
replay it on devices of increasing channel counts.

Expected shape: achieved bandwidth rises with channels until the trace
becomes arrival-limited (the device is no longer the bottleneck);
sequential prefetch streams keep a high row-hit rate throughout.
"""

from __future__ import annotations

from conftest import run_once

from repro.config.hardware import HardwareConfig
from repro.dram.simulator import DramSimulator
from repro.dram.timing import DramTiming
from repro.engine.simulator import Simulator
from repro.engine.tracefiles import dram_request_stream
from repro.memory.bandwidth import compute_dram_traffic
from repro.memory.buffers import BufferSet
from repro.topology.layer import GemmLayer

CONFIG = HardwareConfig(
    array_rows=16, array_cols=16,
    ifmap_sram_kb=4, filter_sram_kb=4, ofmap_sram_kb=4,
)
LAYER = GemmLayer("g", m=256, k=128, n=256)


def test_trace_replay_through_dram_backend(benchmark, reporter):
    def run():
        simulator = Simulator(CONFIG)
        engine = simulator.engine(LAYER)
        traffic = compute_dram_traffic(
            engine, BufferSet.from_config(CONFIG), CONFIG.word_bytes
        )
        layout = simulator.address_layout(LAYER)
        requests = list(dram_request_stream(traffic, layout, line_bytes=64))
        rows = []
        for channels in (1, 2, 4, 8):
            stats = DramSimulator(DramTiming(num_channels=channels)).run(requests)
            rows.append(
                {
                    "channels": channels,
                    "requests": stats.num_requests,
                    "demand_bw": round(traffic.bandwidth.avg_total_bw, 3),
                    "achieved_bw": round(stats.achieved_bandwidth, 3),
                    "row_hit_rate": round(stats.row_hit_rate, 3),
                    "avg_latency": round(stats.avg_latency, 1),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    reporter.emit("trace replay channel sweep", rows)

    achieved = [row["achieved_bw"] for row in rows]
    assert achieved == sorted(achieved)  # channels only help
    demand = rows[0]["demand_bw"]
    # Once the device stops being the bottleneck it tracks the demand.
    assert achieved[-1] >= 0.8 * demand
    # Prefetch streams are sequential: row hits dominate.
    assert all(row["row_hit_rate"] > 0.5 for row in rows)
    # More parallelism cannot hurt latency.
    assert rows[-1]["avg_latency"] <= rows[0]["avg_latency"]
