"""Tables I-IV: the tool's interfaces and workload definitions.

* Table I  — the hardware configuration schema (keys + example values).
* Table II — the topology CSV schema.
* Table III— the spatio-temporal dimension allocation per dataflow.
* Table IV — the language-model GEMM dimensions.

The data comes from :mod:`repro.experiments.tables`; the assertions here
pin it to the paper's literal content.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.tables import (
    table1_config_schema,
    table2_topology_schema,
    table3_mapping,
    table4_language_dims,
)
from repro.workloads.language import TABLE_IV_DIMS
from repro.workloads.resnet50 import resnet50


def test_table1_config_schema(benchmark, reporter):
    rows = run_once(benchmark, table1_config_schema)
    reporter.emit("table1 config schema", rows)
    assert {row["parameter"] for row in rows} >= {"ArrayHeight", "Dataflow"}


def test_table2_topology_schema(benchmark, reporter):
    rows = run_once(benchmark, table2_topology_schema)
    reporter.emit("table2 topology schema", rows)
    assert len(rows) == 8


def test_table3_spatio_temporal_allocation(benchmark, reporter):
    rows = run_once(benchmark, table3_mapping)
    reporter.emit("table3 mapping", rows)
    layer = resnet50()["CB2a_2"]
    by_df = {row["dataflow"]: row for row in rows}
    n_ofmap, w_conv, n_filter = layer.gemm_m, layer.gemm_k, layer.gemm_n
    assert (by_df["os"]["S_R"], by_df["os"]["S_C"], by_df["os"]["T"]) == (n_ofmap, n_filter, w_conv)
    assert (by_df["ws"]["S_R"], by_df["ws"]["S_C"], by_df["ws"]["T"]) == (w_conv, n_filter, n_ofmap)
    assert (by_df["is"]["S_R"], by_df["is"]["S_C"], by_df["is"]["T"]) == (w_conv, n_ofmap, n_filter)


def test_table4_language_model_dims(benchmark, reporter):
    rows = run_once(benchmark, table4_language_dims)
    reporter.emit("table4 workloads", rows)
    assert {row["name"] for row in rows} == set(TABLE_IV_DIMS)
    tf0 = next(row for row in rows if row["name"] == "TF0")
    assert (tf0["S_R"], tf0["T"], tf0["S_C"]) == (31999, 84, 1024)
