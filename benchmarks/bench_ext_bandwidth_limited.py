"""Extension: what the Fig. 11 demand curves cost in *actual* runtime.

Fig. 11 reports the bandwidth needed for stall-free operation and
observes it exceeds commodity DRAM at scale.  The paper stops there;
this extension runs the follow-up experiment with the bandwidth-limited
runtime model: for each partition count, how slow does the layer run on
a fixed-bandwidth device, and how much bandwidth buys back stall-free
speed (the provisioning question)?

Expected shape: under a finite-bandwidth device, adding partitions
stops helping once the layer becomes transfer-bound — the speedup curve
flattens and then *reverses*, turning Fig. 11's abstract sweet spot
into an actual runtime minimum.
"""

from __future__ import annotations

from conftest import run_once

from repro.config.presets import paper_scaling_config
from repro.dataflow.factory import engine_for
from repro.engine.stalls import bandwidth_limited_runtime, sweet_spot_bandwidth
from repro.memory.bandwidth import compute_dram_traffic
from repro.memory.buffers import BufferSet
from repro.mapping.dims import gemm_from_mapping, map_layer
from repro.utils.mathutils import split_evenly
from repro.workloads.language import language_layer

TF0 = language_layer("TF0")
TOTAL_MACS = 2**16
PARTITION_COUNTS = [1, 4, 16, 64, 256]
DEVICE_BW = 64.0  # bytes/cycle: a strong multi-channel DRAM


def square_grid(count: int):
    rows = 1
    while rows * rows < count:
        rows <<= 1
    return (count // rows, rows)


def partition_traffic(count: int):
    """Traffic of the slowest (largest-tile) partition, and the grid."""
    shape = square_grid(TOTAL_MACS // count)
    grid = square_grid(count)
    config = paper_scaling_config(shape[0], shape[1], grid[0], grid[1])
    per_config = config.partition_config()
    mapping = map_layer(TF0, config.dataflow)
    tile_sr = max(split_evenly(mapping.sr, grid[0]))
    tile_sc = max(split_evenly(mapping.sc, grid[1]))
    m, k, n = gemm_from_mapping(tile_sr, tile_sc, mapping.t, config.dataflow)
    engine = engine_for(
        type(TF0)("tile", m=m, k=k, n=n), config.dataflow,
        per_config.array_rows, per_config.array_cols,
    )
    traffic = compute_dram_traffic(
        engine, BufferSet.from_config(per_config), config.word_bytes
    )
    return traffic, count


def test_bandwidth_limited_partition_sweep(benchmark, reporter):
    def run():
        rows = []
        for count in PARTITION_COUNTS:
            traffic, _ = partition_traffic(count)
            # The device bandwidth is shared by all partitions.
            per_partition_bw = DEVICE_BW / count
            stalled = bandwidth_limited_runtime(traffic, per_partition_bw)
            rows.append(
                {
                    "partitions": count,
                    "stall_free_cycles": traffic.total_cycles,
                    "stalled_cycles": round(stalled.total_cycles),
                    "slowdown": round(stalled.slowdown, 3),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    reporter.emit("tf0 on 64B-per-cycle device", rows)

    # Stall-free runtime keeps improving with partitions...
    stall_free = [row["stall_free_cycles"] for row in rows]
    assert stall_free == sorted(stall_free, reverse=True)
    # ...but actual runtime under the device bottoms out and reverses:
    actual = [row["stalled_cycles"] for row in rows]
    best_index = actual.index(min(actual))
    assert 0 < best_index < len(actual) - 1 or actual[-1] > min(actual)
    assert rows[-1]["slowdown"] > rows[0]["slowdown"]


def test_provisioning_bandwidth_grows_with_partitions(benchmark, reporter):
    def run():
        rows = []
        for count in PARTITION_COUNTS:
            traffic, _ = partition_traffic(count)
            needed = sweet_spot_bandwidth(traffic, tolerance=0.05) * count
            rows.append(
                {
                    "partitions": count,
                    "bw_for_5pct_stall": round(needed, 2),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    reporter.emit("bandwidth to stay within 5pct", rows)
    series = [row["bw_for_5pct_stall"] for row in rows]
    assert series == sorted(series)
