"""Fig. 14: multi-workload performance loss, scale-out candidates.

The scale-out twin of Fig. 13: candidates are each layer's locally
optimal *partitioned* configuration (arrays at least 8x8), evaluated on
the whole workload set and normalized to the pareto-optimal candidate.
The rankings live in :mod:`repro.experiments.fig13`.

Expected shape: same qualitative picture as Fig. 13 but with a tighter
spread — partitioned configurations are less aspect-ratio-sensitive —
while the worst candidates still pay real penalties at large budgets.
"""

from __future__ import annotations

from conftest import run_once

from repro.analytical.multiworkload import pareto_search
from repro.experiments.fig13 import (
    SCALEOUT_BUDGETS,
    fig14_language,
    fig14_resnet,
    language_workloads,
)


def test_fig14_resnet50(benchmark, reporter):
    rows = run_once(benchmark, fig14_resnet)
    reporter.emit("resnet50 scaleout losses", rows)
    assert all(row["perf_loss"] >= 1.0 for row in rows)
    for budget in SCALEOUT_BUDGETS:
        assert min(row["perf_loss"] for row in rows if row["macs"] == budget) == 1.0


def test_fig14_language_models(benchmark, reporter):
    rows = run_once(benchmark, fig14_language)
    reporter.emit("language scaleout losses", rows)
    assert all(row["perf_loss"] >= 1.0 for row in rows)


def test_fig13_vs_fig14_scaleout_spread_is_tighter(benchmark, reporter):
    """The paper's comparison across the two figures: for the same
    workloads and budget, scale-out candidates spread less than
    scale-up candidates."""
    workloads = language_workloads()

    def analyse():
        rows = []
        for budget in SCALEOUT_BUDGETS:
            _, up_ranking = pareto_search(workloads, budget, scaleout=False)
            _, out_ranking = pareto_search(workloads, budget, scaleout=True)
            rows.append(
                {
                    "macs": budget,
                    "scaleup_worst_loss": round(up_ranking[-1][1], 4),
                    "scaleout_worst_loss": round(out_ranking[-1][1], 4),
                }
            )
        return rows

    rows = run_once(benchmark, analyse)
    reporter.emit("spread comparison", rows)
    for row in rows:
        assert row["scaleout_worst_loss"] <= row["scaleup_worst_loss"] * 1.05
