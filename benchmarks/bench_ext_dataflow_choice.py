"""Extension: how much a per-layer dataflow choice is worth.

The paper fixes OS for its scaling study; SCALE-Sim supports all three
dataflows.  This extension plans the dataflow per layer (closed forms,
`repro.analytical.dataflow_choice`) and measures the total
runtime/DRAM savings over always-OS, for ResNet-50 and the Table IV
language layers.

Expected shape: conv networks are fairly OS-friendly (small savings);
GEMM suites with short-K or short-M layers gain real runtime from
switching stationarity, and no per-layer plan is ever worse than the
fixed choice.
"""

from __future__ import annotations

from conftest import run_once

from repro.analytical.dataflow_choice import plan_network_dataflows, plan_savings
from repro.config.presets import paper_scaling_config
from repro.workloads.language import language_models
from repro.workloads.resnet50 import resnet50

CONFIG = paper_scaling_config(32, 32)
NETWORKS = [resnet50(), language_models()]


def test_per_layer_dataflow_savings(benchmark, reporter):
    def run():
        rows = []
        for network in NETWORKS:
            for objective in ("runtime", "dram"):
                fixed, best = plan_savings(network, CONFIG, objective)
                rows.append(
                    {
                        "network": network.name,
                        "objective": objective,
                        "fixed_os": int(fixed),
                        "per_layer_best": int(best),
                        "saving": round(1 - best / fixed, 4),
                    }
                )
        return rows

    rows = run_once(benchmark, run)
    reporter.emit("per-layer dataflow savings", rows)

    assert all(row["saving"] >= 0 for row in rows)
    # Somewhere the choice genuinely matters.
    assert any(row["saving"] > 0.05 for row in rows)


def test_dataflow_preferences_by_layer_shape(benchmark, reporter):
    def run():
        rows = []
        plan = plan_network_dataflows(language_models(), CONFIG, "runtime")
        for name, choice in plan.items():
            rows.append(
                {
                    "layer": name,
                    "chosen": choice.dataflow.value,
                    "advantage": round(choice.advantage(), 3),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    reporter.emit("table4 dataflow plan", rows)

    chosen = {row["layer"]: row["chosen"] for row in rows}
    # DB0 (K=50000, N=16) is the deep-reduction archetype: OS.
    assert chosen["DB0"] == "os"
    # The choice is non-trivial across the suite.
    assert len(set(chosen.values())) >= 2
    assert all(row["advantage"] >= 1.0 for row in rows)
