"""Sweep compiler: vectorized design-space pricing vs the engine.

The compiler (:mod:`repro.perf.compiler`) evaluates the whole Fig. 9
design space — every (partition grid, array shape) point for every
dataflow — as numpy arrays, then hands only the analytical frontier to
the cycle-accurate engine.  Two series pin the claims:

* throughput — points priced per second by the engine (measured on a
  deterministic sample of the space) vs by the vectorized compiler
  (the whole space at once).  The compiler must clear 100x.
* pruned sweep — compile + frontier + engine-on-frontier, judged
  against the exact engine walk of the full space: the frontier must
  contain the engine optimum, at most a tenth of the space may
  simulate, and the end-to-end wall time must improve.

The layer cache is disabled throughout so every engine number is a
cold, honest measurement.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.config.hardware import Dataflow
from repro.config.presets import paper_scaling_config
from repro.engine.scaleout import simulate
from repro.perf.cache import cache
from repro.perf.compiler import compile_search_space, simulate_candidates
from repro.workloads.language import language_layer

#: The paper's largest Fig. 9 budget: 2^16 MACs, all three dataflows.
BUDGET = 2**16
DATAFLOWS = tuple(Dataflow)

#: Engine baseline sample: every SAMPLE_STRIDE-th point of each space.
SAMPLE_STRIDE = 16

#: Repeats of the full compiled pass (amortizes timer granularity).
COMPILED_REPEATS = 10


def _engine_cycles(layer, space, index: int) -> int:
    cand = space.candidate(index)
    config = paper_scaling_config(
        cand.array_rows,
        cand.array_cols,
        cand.partition_rows,
        cand.partition_cols,
        dataflow=space.dataflow,
    )
    return simulate(config, layer).total_cycles


def test_compiler_throughput_100x(benchmark, reporter):
    """Vectorized pricing beats engine pricing by >= 100x points/s."""
    layer = language_layer("TF0")
    cache.reset()
    cache.disable()
    try:
        spaces = [compile_search_space(layer, BUDGET, dataflow=df) for df in DATAFLOWS]
        engine_points = 0
        start = time.perf_counter()
        for space in spaces:
            for index in range(0, len(space), SAMPLE_STRIDE):
                _engine_cycles(layer, space, index)
                engine_points += 1
        engine_s = time.perf_counter() - start

        def compiled() -> int:
            total = 0
            for _ in range(COMPILED_REPEATS):
                total = 0
                for df in DATAFLOWS:
                    space = compile_search_space(layer, BUDGET, dataflow=df)
                    space.best_index()
                    total += len(space)
            return total * COMPILED_REPEATS

        start = time.perf_counter()
        compiled_points = run_once(benchmark, compiled)
        compiled_s = time.perf_counter() - start
    finally:
        cache.enable()
        cache.reset()

    engine_rate = engine_points / engine_s
    compiled_rate = compiled_points / compiled_s
    speedup = compiled_rate / engine_rate
    reporter.emit(
        "pricing throughput 2^16",
        [
            {
                "path": "engine (sampled)",
                "points": engine_points,
                "wall_s": round(engine_s, 4),
                "points_per_s": round(engine_rate, 1),
            },
            {
                "path": "compiler (full space)",
                "points": compiled_points,
                "wall_s": round(compiled_s, 4),
                "points_per_s": round(compiled_rate, 1),
            },
            {
                "path": "speedup",
                "points": compiled_points // COMPILED_REPEATS,
                "wall_s": 0.0,
                "points_per_s": round(speedup, 1),
            },
        ],
    )
    assert speedup >= 100, (
        f"compiler prices {compiled_rate:.0f} points/s vs engine "
        f"{engine_rate:.0f} points/s — only {speedup:.1f}x"
    )


def test_pruned_sweep_matches_exact_optimum(benchmark, reporter):
    """Frontier pruning keeps the engine optimum and cuts the wall time.

    ``prune_band=0.1`` mirrors the CI fig09 mini-sweep.  The >= 10x
    engine-invocation cut is asserted on the output-stationary space
    (Fig. 9's dataflow); weight-stationary landscapes are too flat for
    a universal bound — dozens of near-tied points legitimately belong
    to the frontier there, which the series reports honestly.
    """
    layer = language_layer("TF0")
    cache.reset()
    cache.disable()
    rows = []
    try:
        for df in DATAFLOWS:
            space = compile_search_space(layer, BUDGET, dataflow=df)
            start = time.perf_counter()
            exact = [(i, _engine_cycles(layer, space, i)) for i in range(len(space))]
            exact_s = time.perf_counter() - start
            exact_best = min(exact, key=lambda pair: pair[1])

            start = time.perf_counter()
            pruned_space = compile_search_space(layer, BUDGET, dataflow=df)
            frontier = pruned_space.frontier(prune_band=0.1)
            results = simulate_candidates(layer, pruned_space, frontier)
            pruned_s = time.perf_counter() - start

            # The engine-optimal cycle count must survive pruning, and
            # on the OS space pruning must drop >= 90% of the engine
            # invocations.
            assert min(cycles for _, cycles in results) == exact_best[1]
            if df is Dataflow.OUTPUT_STATIONARY:
                assert len(frontier) * 10 <= len(space)
            rows.append(
                {
                    "dataflow": df.value,
                    "points": len(space),
                    "simulated": len(frontier),
                    "exact_wall_s": round(exact_s, 4),
                    "pruned_wall_s": round(pruned_s, 4),
                    "e2e_speedup": round(exact_s / pruned_s, 2),
                    "optimum_cycles": exact_best[1],
                }
            )
        run_once(benchmark, lambda: None)
    finally:
        cache.enable()
        cache.reset()

    reporter.emit("pruned vs exact sweep 2^16", rows)
    assert all(row["e2e_speedup"] > 1 for row in rows)
