"""Ablation: what the paper's "costly" output data plane would buy.

Sec. II-A: under OS, draining results through the PE mesh costs r idle
cycles per fold; "an alternative high performance implementation using
a separate data plane to move generated output is also possible,
however, it is costly to implement."  This ablation prices the benefit
side of that trade across array shapes and layers.

Expected shape: the saving per fold is exactly r cycles out of
``2r + c + T - 2``, so it is largest for tall arrays running short-T
(small reduction) layers — up to ~50% as T shrinks — and negligible for
deep-reduction layers where T dominates the fold.
"""

from __future__ import annotations

from conftest import run_once

from repro.config.hardware import Dataflow
from repro.dataflow.factory import engine_for_gemm
from repro.workloads.language import language_layer

SHAPES = [(128, 8), (32, 32), (8, 128)]
LAYERS = [
    language_layer("TF0"),   # T = 84: short reduction
    language_layer("GNMT3"),  # T = 32: very short reduction
    language_layer("DB0"),   # T = 50000: reduction-dominated
]


def test_output_dataplane_savings(benchmark, reporter):
    def run():
        rows = []
        for layer in LAYERS:
            m, k, n = layer.gemm_dims()
            for shape in SHAPES:
                baseline = engine_for_gemm(m, k, n, Dataflow.OUTPUT_STATIONARY, *shape)
                dataplane = engine_for_gemm(
                    m, k, n, Dataflow.OUTPUT_STATIONARY, *shape, output_dataplane=True
                )
                base_cycles = baseline.total_cycles()
                dp_cycles = dataplane.total_cycles()
                rows.append(
                    {
                        "layer": layer.name,
                        "T": k,
                        "array": f"{shape[0]}x{shape[1]}",
                        "baseline_cycles": base_cycles,
                        "dataplane_cycles": dp_cycles,
                        "saving": round(1 - dp_cycles / base_cycles, 4),
                    }
                )
        return rows

    rows = run_once(benchmark, run)
    reporter.emit("drain elimination savings", rows)

    assert all(0 < row["saving"] < 0.5 for row in rows)
    by_key = {(row["layer"], row["array"]): row["saving"] for row in rows}
    # Tall arrays save more than wide ones on the same layer (r drain).
    assert by_key[("GNMT3", "128x8")] > by_key[("GNMT3", "8x128")]
    # Short-T layers save more than reduction-dominated ones.
    assert by_key[("GNMT3", "32x32")] > by_key[("DB0", "32x32")]
    # And somewhere the paper's "high performance" claim is material.
    assert max(row["saving"] for row in rows) > 0.25
