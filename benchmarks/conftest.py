"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper: it
computes the series with the library, prints it in a readable form
(run pytest with ``-s`` to see it), and writes a CSV artifact under
``benchmarks/results/`` so the data survives the run.

``benchmark.pedantic(..., rounds=1)`` is used throughout: these are
experiment harnesses, not microbenchmarks, so one timed round each.
"""

from __future__ import annotations

import csv
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Sequence

import pytest

from repro import obs
from repro._version import __version__

RESULTS_DIR = Path(__file__).parent / "results"

#: Per-benchmark wall-time + counter stamps land here as JSON.
PERF_DIR = RESULTS_DIR / "perf"

#: MAC budgets the paper sweeps (Figs. 9-12 use subsets of these).
PAPER_MAC_BUDGETS = [2**10, 2**12, 2**14, 2**16, 2**18]


class SeriesReporter:
    """Print a labelled table and persist it as CSV."""

    def __init__(self, name: str):
        self.name = name
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def emit(self, title: str, rows: Sequence[Dict[str, object]]) -> Path:
        if not rows:
            raise ValueError(f"{self.name}: empty series {title!r}")
        header = list(rows[0].keys())
        widths = {
            key: max(len(key), max(len(_fmt(row[key])) for row in rows)) for key in header
        }
        print(f"\n== {self.name}: {title} ==")
        print("  ".join(key.ljust(widths[key]) for key in header))
        for row in rows:
            print("  ".join(_fmt(row[key]).ljust(widths[key]) for key in header))
        safe = title.lower().replace(" ", "_").replace("/", "-")
        path = RESULTS_DIR / f"{self.name}_{safe}.csv"
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=header)
            writer.writeheader()
            writer.writerows(rows)
        return path


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


@pytest.fixture
def reporter(request) -> SeriesReporter:
    """A SeriesReporter named after the benchmark module."""
    module = request.module.__name__.replace("bench_", "").replace("benchmarks.", "")
    return SeriesReporter(module)


def _bench_name() -> str:
    """The currently running benchmark's test id, filesystem-safe."""
    current = os.environ.get("PYTEST_CURRENT_TEST", "benchmark")
    # "benchmarks/bench_x.py::test_y (call)" -> "bench_x-test_y"
    current = current.split(" ")[0].replace(".py::", "-")
    return current.rsplit("/", 1)[-1].replace("::", "-").replace("[", "_").rstrip("]")


def _counter_snapshot() -> Dict[str, int]:
    snap = obs.metrics.snapshot()
    return dict(snap.get("counters", {}))


def run_once(benchmark, fn):
    """Register ``fn`` with pytest-benchmark, executing exactly once.

    Also stamps a ``results/perf/<bench>.json`` artifact with the
    wall time and the delta of every ``repro.obs`` counter that moved
    during the run (simulated cycles, tiles mapped, DRAM traffic, ...),
    so benchmark outputs carry their own accounting.
    """
    was_enabled = obs.metrics.enabled
    obs.metrics.enable()
    before = _counter_snapshot()
    start = time.perf_counter()
    try:
        result = benchmark.pedantic(fn, rounds=1, iterations=1)
    finally:
        wall = time.perf_counter() - start
        after = _counter_snapshot()
        if not was_enabled:
            obs.metrics.disable()
    deltas = {
        key: after[key] - before.get(key, 0)
        for key in sorted(after)
        if after[key] != before.get(key, 0)
    }
    PERF_DIR.mkdir(parents=True, exist_ok=True)
    stamp = {
        "bench": _bench_name(),
        "version": __version__,
        "wall_time_s": round(wall, 6),
        "counters": deltas,
    }
    path = PERF_DIR / f"{_bench_name()}.json"
    path.write_text(json.dumps(stamp, indent=2, sort_keys=True) + "\n")
    return result
