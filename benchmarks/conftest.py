"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper: it
computes the series with the library, prints it in a readable form
(run pytest with ``-s`` to see it), and writes a CSV artifact under
``benchmarks/results/`` so the data survives the run.

``benchmark.pedantic(..., rounds=1)`` is used throughout: these are
experiment harnesses, not microbenchmarks, so one timed round each.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Sequence

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: MAC budgets the paper sweeps (Figs. 9-12 use subsets of these).
PAPER_MAC_BUDGETS = [2**10, 2**12, 2**14, 2**16, 2**18]


class SeriesReporter:
    """Print a labelled table and persist it as CSV."""

    def __init__(self, name: str):
        self.name = name
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def emit(self, title: str, rows: Sequence[Dict[str, object]]) -> Path:
        if not rows:
            raise ValueError(f"{self.name}: empty series {title!r}")
        header = list(rows[0].keys())
        widths = {
            key: max(len(key), max(len(_fmt(row[key])) for row in rows)) for key in header
        }
        print(f"\n== {self.name}: {title} ==")
        print("  ".join(key.ljust(widths[key]) for key in header))
        for row in rows:
            print("  ".join(_fmt(row[key]).ljust(widths[key]) for key in header))
        safe = title.lower().replace(" ", "_").replace("/", "-")
        path = RESULTS_DIR / f"{self.name}_{safe}.csv"
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=header)
            writer.writeheader()
            writer.writerows(rows)
        return path


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


@pytest.fixture
def reporter(request) -> SeriesReporter:
    """A SeriesReporter named after the benchmark module."""
    module = request.module.__name__.replace("bench_", "").replace("benchmarks.", "")
    return SeriesReporter(module)


def run_once(benchmark, fn):
    """Register ``fn`` with pytest-benchmark, executing exactly once."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
