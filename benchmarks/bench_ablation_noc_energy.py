"""Ablation: does NoC transport energy change the Fig. 12 story?

Sec. IV-A suggests that distributing operands across partitions adds
network traversal energy beyond the DRAM cost the paper charges.  This
ablation recomputes the Fig. 12 energy-vs-partitions sweep with the
mesh NoC term included and asks whether the minimum-energy partition
count shifts.

Expected shape: NoC energy grows with the grid (more byte-hops per
byte), so including it penalizes large grids — the energy optimum can
only move toward fewer partitions, and for moderate hop costs the
qualitative Fig. 12 conclusion (monolithic wins small budgets, a few
partitions win huge budgets) survives.
"""

from __future__ import annotations

from conftest import run_once

from repro.config.presets import paper_scaling_config
from repro.energy.model import energy_of_result
from repro.engine.scaleout import ScaleOutSimulator
from repro.engine.simulator import Simulator
from repro.noc.cost import layer_noc_cost
from repro.noc.mesh import NocConfig
from repro.workloads.resnet50 import PAPER_CBA3_LAYER, resnet50

CBA3 = resnet50()[PAPER_CBA3_LAYER]
NOC = NocConfig(energy_per_byte_hop=0.05)
MAC_BUDGETS = [4096, 2**14, 2**16, 2**18]
PARTITION_COUNTS = [1, 4, 16, 64]


def square_grid(count: int):
    rows = 1
    while rows * rows < count:
        rows <<= 1
    return (count // rows, rows)


def sweep(total_macs: int):
    rows = []
    for count in PARTITION_COUNTS:
        if total_macs % count or total_macs // count < 64:
            continue
        shape = square_grid(total_macs // count)
        grid = square_grid(count)
        config = paper_scaling_config(shape[0], shape[1], grid[0], grid[1])
        if count == 1:
            result = Simulator(config).run_layer(CBA3)
        else:
            result = ScaleOutSimulator(config).run_layer(CBA3)
        base = energy_of_result(result)
        noc_cost = layer_noc_cost(CBA3, config)
        with_noc = base.with_noc(noc_cost.energy(NOC))
        rows.append(
            {
                "macs": total_macs,
                "partitions": count,
                "e_without_noc": round(base.total, 1),
                "e_noc_term": round(with_noc.noc, 1),
                "e_with_noc": round(with_noc.total, 1),
                "byte_hops_per_byte": round(
                    noc_cost.total_byte_hops / noc_cost.port_bytes, 3
                ),
            }
        )
    return rows


def _argmin(rows, key):
    return min(rows, key=lambda row: row[key])["partitions"]


def test_noc_energy_ablation(benchmark, reporter):
    def run():
        return [row for macs in MAC_BUDGETS for row in sweep(macs)]

    rows = run_once(benchmark, run)
    reporter.emit("cba3 energy with noc", rows)

    for macs in MAC_BUDGETS:
        budget_rows = [row for row in rows if row["macs"] == macs]
        # Byte-hops per byte grow with the grid...
        hop_rates = [row["byte_hops_per_byte"] for row in budget_rows]
        assert hop_rates == sorted(hop_rates)
        # ...so the optimum never moves toward MORE partitions.
        assert _argmin(budget_rows, "e_with_noc") <= _argmin(budget_rows, "e_without_noc")

    # The qualitative Fig. 12 story survives moderate hop costs:
    small = [row for row in rows if row["macs"] == 4096]
    huge = [row for row in rows if row["macs"] == 2**18]
    assert _argmin(small, "e_with_noc") == 1
    assert _argmin(huge, "e_with_noc") >= 1
